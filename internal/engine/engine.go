// Package engine steps the SM array through simulated time. It owns the
// one loop the whole simulator's wall-clock time is spent in: for every
// simulated time step, run each busy SM's warp schedulers and report the
// earliest future cycle at which any of them could do useful work.
//
// Two implementations share that contract:
//
//   - The serial engine is the legacy reference path: it steps busy cores
//     one after another in ascending SM id, with every cross-SM side
//     effect (memory-system traffic, statistics, CTA completions) applied
//     directly as it happens.
//
//   - The parallel engine shards busy cores across a persistent worker
//     pool using a two-phase deterministic protocol. Phase A (parallel):
//     each core steps against purely per-SM state, recording its would-be
//     memory transactions, statistics, and completion callbacks into its
//     IssueLog (see internal/sm/log.go). Phase B (serial): the logs are
//     drained in canonical order — ascending SM id, program order within
//     an SM — which reproduces the serial engine's exact interleaving of
//     calls into the shared memory system and statistics sinks. Results,
//     stats, stall attribution, state digests, and checkpoints are
//     therefore byte-identical to the serial engine at any worker count.
//
// Both engines skip idle SMs via an O(1) per-core residency check, so the
// long tail of a run (few busy SMs) costs one compare per idle core per
// step under either engine.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crisp/internal/sm"
)

// Engine advances every busy SM core one simulated time step at a time.
type Engine interface {
	// Step runs all busy cores for cycle now and returns the earliest
	// future cycle at which the SM array could do useful work, plus
	// whether any core was busy. When no core is busy the next value is
	// meaningless; when all busy cores are permanently blocked it is
	// >= sm.Never (the driver's livelock signal).
	Step(now int64) (next int64, anyBusy bool)
	// Workers reports the effective worker count (1 for the serial engine).
	Workers() int
	// Close releases the engine's goroutines. The engine must not be
	// stepped afterwards.
	Close()
}

// Resolve maps a Workers configuration value to an effective worker
// count: 0 selects auto (GOMAXPROCS), negative forces serial, and any
// count is capped at numCores — more workers than SMs can never help.
func Resolve(workers, numCores int) int {
	if workers < 0 {
		return 1
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numCores {
		workers = numCores
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// New builds the engine for cores: serial for an effective worker count
// of one, the two-phase parallel engine otherwise. Construction switches
// every core into the matching effects mode, so an engine must be built
// (and the previous one closed) before each run.
func New(cores []*sm.Core, workers int) Engine {
	w := Resolve(workers, len(cores))
	if w <= 1 {
		for _, c := range cores {
			c.SetBuffered(false)
		}
		return &serialEngine{cores: cores}
	}
	return newParallel(cores, w)
}

// serialEngine is the legacy direct-effects reference path.
type serialEngine struct {
	cores []*sm.Core
}

func (e *serialEngine) Step(now int64) (int64, bool) {
	next := int64(sm.Never)
	anyBusy := false
	for _, c := range e.cores {
		if !c.Busy() {
			continue
		}
		anyBusy = true
		if n := c.Step(now); n < next {
			next = n
		}
	}
	return next, anyBusy
}

func (e *serialEngine) Workers() int { return 1 }
func (e *serialEngine) Close()       {}

// minFanout is the busy-core count below which phase A runs inline on the
// stepping goroutine: waking workers costs on the order of a microsecond,
// which only pays off once several cores' worth of scheduler work can be
// overlapped. The protocol (and thus the results) are identical either
// way; only the goroutine handoff is skipped.
const minFanout = 4

// parallelEngine is the two-phase worker-pool engine.
type parallelEngine struct {
	cores   []*sm.Core
	workers int

	// Per-step shards, published to workers via the work channel's
	// happens-before edge and read back after wg.Wait.
	busy   []int   // busy core ids, ascending
	nexts  []int64 // phase-A result per busy index
	now    int64
	cursor atomic.Int64

	work   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

func newParallel(cores []*sm.Core, workers int) *parallelEngine {
	e := &parallelEngine{
		cores:   cores,
		workers: workers,
		busy:    make([]int, 0, len(cores)),
		nexts:   make([]int64, len(cores)),
		work:    make(chan struct{}),
	}
	for _, c := range cores {
		c.SetBuffered(true)
	}
	for i := 0; i < workers-1; i++ {
		go func() {
			for range e.work {
				e.runShard()
				e.wg.Done()
			}
		}()
	}
	return e
}

// runShard claims busy-core indices off the shared cursor until none
// remain, stepping each claimed core. Claims are dynamic (one core at a
// time) so an SM with heavy scheduler work does not serialize the step
// behind it; results land in disjoint nexts slots, so phase A shares
// nothing but the cursor.
func (e *parallelEngine) runShard() {
	now := e.now
	n := int64(len(e.busy))
	for {
		i := e.cursor.Add(1) - 1
		if i >= n {
			return
		}
		e.nexts[i] = e.cores[e.busy[i]].Step(now)
	}
}

func (e *parallelEngine) Step(now int64) (int64, bool) {
	busy := e.busy[:0]
	for id, c := range e.cores {
		if c.Busy() {
			busy = append(busy, id)
		}
	}
	e.busy = busy
	if len(busy) == 0 {
		return sm.Never, false
	}

	// Phase A: step every busy core against per-SM state only.
	e.now = now
	e.cursor.Store(0)
	if helpers := min(e.workers, len(busy)) - 1; helpers > 0 && len(busy) >= minFanout {
		e.wg.Add(helpers)
		for i := 0; i < helpers; i++ {
			e.work <- struct{}{}
		}
		e.runShard()
		e.wg.Wait()
	} else {
		e.runShard()
	}

	// Phase B: serial commit in canonical order (ascending SM id; each
	// core's log is already in scheduler/program order). This is the only
	// code that touches the shared memory system and statistics sinks.
	next := int64(sm.Never)
	for i, id := range busy {
		e.cores[id].CommitStep(now)
		if e.nexts[i] < next {
			next = e.nexts[i]
		}
	}
	return next, true
}

func (e *parallelEngine) Workers() int { return e.workers }

func (e *parallelEngine) Close() {
	if !e.closed {
		e.closed = true
		close(e.work)
	}
}
