package geom

import (
	"testing"
	"testing/quick"

	"crisp/internal/gmath"
)

// stripIndices builds a triangle-strip-like index pattern with heavy
// vertex sharing.
func stripIndices(n int) []uint32 {
	var idx []uint32
	for i := 0; i < n; i++ {
		a := uint32(i)
		idx = append(idx, a, a+1, a+2)
	}
	return idx
}

func TestBatchIndicesDedupWithinBatch(t *testing.T) {
	// 10 triangles sharing vertices: 0,1,2 / 1,2,3 / ... 12 unique verts.
	idx := stripIndices(10)
	batches := BatchIndices(idx, 96)
	if len(batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(batches))
	}
	if got := len(batches[0].Unique); got != 12 {
		t.Errorf("unique = %d, want 12", got)
	}
	if got := len(batches[0].LocalIdx); got != 30 {
		t.Errorf("local indices = %d, want 30", got)
	}
}

func TestBatchIndicesSplitsAtCapacity(t *testing.T) {
	// A long strip: 200 triangles → 202 unique vertices, batch size 96.
	idx := stripIndices(200)
	batches := BatchIndices(idx, 96)
	if len(batches) < 3 {
		t.Fatalf("batches = %d, want ≥3", len(batches))
	}
	for i, b := range batches {
		if len(b.Unique) > 96 {
			t.Errorf("batch %d has %d uniques (cap 96)", i, len(b.Unique))
		}
		if len(b.LocalIdx)%3 != 0 {
			t.Errorf("batch %d splits a triangle", i)
		}
		for _, li := range b.LocalIdx {
			if int(li) >= len(b.Unique) {
				t.Fatalf("batch %d local index %d out of range", i, li)
			}
		}
	}
	// Boundary vertices are re-shaded in the next batch (duplication
	// across batches, dedup only within) — total shaded > unique total.
	shaded := ShadedVertexCount(batches)
	if shaded <= 202 {
		t.Errorf("shaded = %d, want > 202 (cross-batch duplication)", shaded)
	}
}

func TestBatchSizeAffectsShadedCount(t *testing.T) {
	// Smaller batches force more cross-batch re-shading (the paper's
	// batch-size sweep: larger batches approach the unique count).
	idx := stripIndices(300)
	small := ShadedVertexCount(BatchIndices(idx, 12))
	big := ShadedVertexCount(BatchIndices(idx, 192))
	if small <= big {
		t.Errorf("batch-12 shaded %d should exceed batch-192 shaded %d", small, big)
	}
}

// Property: every triangle is preserved (same global index triple) after
// batching, in order.
func TestBatchIndicesPreservesTriangles(t *testing.T) {
	f := func(raw []uint8) bool {
		n := len(raw) / 3 * 3
		idx := make([]uint32, n)
		for i := 0; i < n; i++ {
			idx[i] = uint32(raw[i]) % 64
		}
		batches := BatchIndices(idx, 32)
		var rebuilt []uint32
		for _, b := range batches {
			for _, li := range b.LocalIdx {
				rebuilt = append(rebuilt, b.Unique[li])
			}
		}
		if len(rebuilt) != len(idx) {
			return false
		}
		for i := range idx {
			if rebuilt[i] != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeshValidate(t *testing.T) {
	m := &Mesh{
		Verts: []Vertex{{}, {}, {}},
		Idx:   []uint32{0, 1, 2},
	}
	if err := m.Validate(); err != nil {
		t.Errorf("valid mesh rejected: %v", err)
	}
	m.Idx = []uint32{0, 1}
	if err := m.Validate(); err == nil {
		t.Error("accepted non-multiple-of-3 indices")
	}
	m.Idx = []uint32{0, 1, 9}
	if err := m.Validate(); err == nil {
		t.Error("accepted out-of-range index")
	}
	if (&Mesh{Verts: m.Verts, Idx: []uint32{0, 1, 2, 0, 2, 1}}).Triangles() != 2 {
		t.Error("Triangles count wrong")
	}
}

// cv builds a ClipVert directly in clip space.
func cv(x, y, z, w float32) ClipVert {
	return ClipVert{Clip: gmath.V4(x, y, z, w)}
}

func TestAssembleCullKeepsVisibleTriangle(t *testing.T) {
	verts := []ClipVert{
		cv(-0.5, -0.5, 0.5, 1),
		cv(0.5, -0.5, 0.5, 1),
		cv(0, 0.5, 0.5, 1),
	}
	tris, st := AssembleCull(verts, []uint16{0, 1, 2}, false)
	if len(tris) != 1 || st.Output != 1 {
		t.Fatalf("visible triangle culled: %+v", st)
	}
}

func TestAssembleCullRejectsOffscreen(t *testing.T) {
	// Entirely beyond the right plane: x > w for all vertices.
	verts := []ClipVert{
		cv(2, 0, 0.5, 1),
		cv(3, 0, 0.5, 1),
		cv(2.5, 1, 0.5, 1),
	}
	tris, st := AssembleCull(verts, []uint16{0, 1, 2}, false)
	if len(tris) != 0 || st.Frustum != 1 {
		t.Fatalf("offscreen triangle kept: %+v", st)
	}
}

func TestAssembleCullBackface(t *testing.T) {
	// Counter-clockwise in NDC is front-facing under our convention;
	// check one winding survives and its reverse is culled.
	front := []ClipVert{
		cv(-0.5, -0.5, 0.5, 1),
		cv(0.5, -0.5, 0.5, 1),
		cv(0, 0.5, 0.5, 1),
	}
	t1, _ := AssembleCull(front, []uint16{0, 1, 2}, true)
	t2, _ := AssembleCull(front, []uint16{0, 2, 1}, true)
	if len(t1)+len(t2) != 1 {
		t.Fatalf("backface culling kept %d+%d, want exactly one winding", len(t1), len(t2))
	}
}

func TestNearPlaneClipSplits(t *testing.T) {
	// One vertex behind the near plane (z<0): clip produces 2 triangles.
	verts := []ClipVert{
		cv(-0.5, -0.5, 0.5, 1),
		cv(0.5, -0.5, 0.5, 1),
		cv(0, 0.5, -0.5, 1),
	}
	tris, st := AssembleCull(verts, []uint16{0, 1, 2}, false)
	if len(tris) != 2 || st.Clipped != 1 {
		t.Fatalf("near clip: %d tris, stats %+v", len(tris), st)
	}
	for _, tr := range tris {
		for _, v := range tr.V {
			if v.Clip.Z < -1e-4 {
				t.Errorf("clipped vertex still behind near plane: %v", v.Clip)
			}
		}
	}
}

func TestNearPlaneClipOneInside(t *testing.T) {
	verts := []ClipVert{
		cv(0, 0.5, 0.5, 1),
		cv(-0.5, -0.5, -0.5, 1),
		cv(0.5, -0.5, -0.5, 1),
	}
	tris, _ := AssembleCull(verts, []uint16{0, 1, 2}, false)
	if len(tris) != 1 {
		t.Fatalf("one-inside clip made %d tris, want 1", len(tris))
	}
}

func TestClipInterpolatesAttributes(t *testing.T) {
	a := ClipVert{Clip: gmath.V4(0, 0, 1, 1), UV: gmath.Vec2{X: 0, Y: 0}}
	b := ClipVert{Clip: gmath.V4(0, 0, -1, 1), UV: gmath.Vec2{X: 1, Y: 1}}
	mid := lerpClipVert(a, b, 0.5)
	if mid.UV.X != 0.5 || mid.Clip.Z != 0 {
		t.Errorf("lerp = %+v", mid)
	}
}

func TestShadedVertexCountEmpty(t *testing.T) {
	if ShadedVertexCount(nil) != 0 {
		t.Error("empty batch list should shade 0")
	}
	if got := BatchIndices(nil, 96); len(got) != 0 {
		t.Error("empty index list should produce no batches")
	}
}

// Property: near-plane clipping never emits a vertex behind the plane and
// never grows the triangle count beyond 2.
func TestClipNearProperty(t *testing.T) {
	f := func(coords [12]int8) bool {
		mk := func(i int) ClipVert {
			return cv(float32(coords[i])/8, float32(coords[i+1])/8,
				float32(coords[i+2])/8, 1+float32(coords[i+3]%4)/8)
		}
		verts := []ClipVert{mk(0), mk(4), mk(8)}
		tris, _ := AssembleCull(verts, []uint16{0, 1, 2}, false)
		if len(tris) > 2 {
			return false
		}
		for _, tr := range tris {
			for _, v := range tr.V {
				if v.Clip.Z < -1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: batching never exceeds capacity and never loses triangles,
// for any batch size.
func TestBatchCapacityProperty(t *testing.T) {
	f := func(raw []uint8, sizeRaw uint8) bool {
		size := 3 + int(sizeRaw)%120
		n := len(raw) / 3 * 3
		idx := make([]uint32, n)
		for i := 0; i < n; i++ {
			idx[i] = uint32(raw[i]) % 100
		}
		batches := BatchIndices(idx, size)
		total := 0
		for _, b := range batches {
			if len(b.Unique) > size {
				return false
			}
			total += len(b.LocalIdx)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
