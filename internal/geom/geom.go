// Package geom implements the geometry front of the rendering pipeline:
// vertex/index buffers, batch-based vertex shading (contemporary GPUs
// de-duplicate vertices only locally within a batch — the replacement for
// the classic post-transform vertex cache), primitive assembly, frustum
// and back-face culling, and near-plane clipping.
package geom

import (
	"fmt"

	"crisp/internal/gmath"
)

// Vertex is one mesh vertex: position, normal, UV, and the texture-array
// layer used by instanced draws.
type Vertex struct {
	Pos   gmath.Vec3
	Nrm   gmath.Vec3
	UV    gmath.Vec2
	Layer float32
}

// VertexStride is the byte footprint of one vertex in the vertex buffer
// (3+3+2+1 floats).
const VertexStride = 36

// Mesh is an indexed triangle list.
type Mesh struct {
	Verts []Vertex
	Idx   []uint32
}

// Triangles reports the triangle count.
func (m *Mesh) Triangles() int { return len(m.Idx) / 3 }

// Validate checks index bounds and triangle-list alignment.
func (m *Mesh) Validate() error {
	if len(m.Idx)%3 != 0 {
		return fmt.Errorf("geom: index count %d not a multiple of 3", len(m.Idx))
	}
	for _, i := range m.Idx {
		if int(i) >= len(m.Verts) {
			return fmt.Errorf("geom: index %d out of range (%d verts)", i, len(m.Verts))
		}
	}
	return nil
}

// DefaultBatchSize is the vertex-batch capacity. The paper sweeps batch
// sizes and finds 96 gives the highest vertex-shader invocation-count
// correlation with hardware (matching Kerbl et al.).
const DefaultBatchSize = 96

// Batch is one vertex-shading batch: the unique vertices it shades (in
// first-use order) and its triangle list re-indexed into that local space.
type Batch struct {
	// Unique holds global vertex-buffer indices, one per shaded vertex.
	Unique []uint32
	// LocalIdx is the batch's triangle list, indexing Unique.
	LocalIdx []uint16
}

// BatchIndices splits a triangle list into vertex batches of at most
// batchSize unique vertices, de-duplicating vertex references only within
// each batch. Triangles never straddle batches.
func BatchIndices(idx []uint32, batchSize int) []Batch {
	if batchSize < 3 {
		batchSize = DefaultBatchSize
	}
	var batches []Batch
	local := make(map[uint32]uint16)
	cur := Batch{}
	flush := func() {
		if len(cur.Unique) > 0 {
			batches = append(batches, cur)
			cur = Batch{}
			local = make(map[uint32]uint16)
		}
	}
	for t := 0; t+2 < len(idx); t += 3 {
		tri := idx[t : t+3]
		// How many new uniques would this triangle add?
		newCount := 0
		for _, g := range tri {
			if _, ok := local[g]; !ok {
				newCount++
			}
		}
		if len(cur.Unique)+newCount > batchSize {
			flush()
			newCount = 3
		}
		for _, g := range tri {
			li, ok := local[g]
			if !ok {
				li = uint16(len(cur.Unique))
				local[g] = li
				cur.Unique = append(cur.Unique, g)
			}
			cur.LocalIdx = append(cur.LocalIdx, li)
		}
	}
	flush()
	return batches
}

// ShadedVertexCount reports the total vertex-shader invocations a batched
// draw performs (the sum of unique vertices over batches). This is the
// quantity validated against hardware in paper Fig. 3.
func ShadedVertexCount(batches []Batch) int {
	n := 0
	for i := range batches {
		n += len(batches[i].Unique)
	}
	return n
}

// ClipVert is a post-vertex-shader vertex: clip-space position plus the
// varyings carried to the fragment stage.
type ClipVert struct {
	Clip  gmath.Vec4
	WNrm  gmath.Vec3
	WPos  gmath.Vec3
	UV    gmath.Vec2
	Layer float32
	// Global is the vertex's unique-buffer index, used to address the
	// post-transform attribute storage in L2.
	Global uint32
}

// Tri is one assembled triangle.
type Tri struct {
	V [3]ClipVert
}

// lerpClipVert interpolates all attributes between a and b at t.
func lerpClipVert(a, b ClipVert, t float32) ClipVert {
	return ClipVert{
		Clip: gmath.Vec4{
			X: gmath.Lerp(a.Clip.X, b.Clip.X, t),
			Y: gmath.Lerp(a.Clip.Y, b.Clip.Y, t),
			Z: gmath.Lerp(a.Clip.Z, b.Clip.Z, t),
			W: gmath.Lerp(a.Clip.W, b.Clip.W, t),
		},
		WNrm:   gmath.Lerp3(a.WNrm, b.WNrm, t),
		WPos:   gmath.Lerp3(a.WPos, b.WPos, t),
		UV:     gmath.Vec2{X: gmath.Lerp(a.UV.X, b.UV.X, t), Y: gmath.Lerp(a.UV.Y, b.UV.Y, t)},
		Layer:  a.Layer,
		Global: a.Global,
	}
}

// CullStats counts what primitive assembly discarded.
type CullStats struct {
	Input    int
	Frustum  int
	Backface int
	Clipped  int // triangles split by the near plane
	Output   int
}

// AssembleCull assembles triangles from a batch's local index list over
// shaded vertices, removes primitives outside the view frustum, clips
// against the near plane, and culls back-facing triangles. Surviving
// primitives are what the rasterizer bins by screen position.
func AssembleCull(verts []ClipVert, localIdx []uint16, backface bool) ([]Tri, CullStats) {
	var out []Tri
	var st CullStats
	for t := 0; t+2 < len(localIdx); t += 3 {
		st.Input++
		tri := Tri{V: [3]ClipVert{verts[localIdx[t]], verts[localIdx[t+1]], verts[localIdx[t+2]]}}
		// Trivial frustum rejection: all three vertices outside one plane.
		if outsideFrustum(tri) {
			st.Frustum++
			continue
		}
		clipped := clipNear(tri)
		if len(clipped) == 0 {
			st.Frustum++
			continue
		}
		if len(clipped) > 1 {
			st.Clipped++
		}
		for _, ct := range clipped {
			if backface && isBackface(ct) {
				st.Backface++
				continue
			}
			out = append(out, ct)
			st.Output++
		}
	}
	return out, st
}

// outsideFrustum reports trivial rejection against the clip-space planes.
func outsideFrustum(t Tri) bool {
	planes := [5]func(v gmath.Vec4) bool{
		func(v gmath.Vec4) bool { return v.X < -v.W },
		func(v gmath.Vec4) bool { return v.X > v.W },
		func(v gmath.Vec4) bool { return v.Y < -v.W },
		func(v gmath.Vec4) bool { return v.Y > v.W },
		func(v gmath.Vec4) bool { return v.Z > v.W }, // beyond far
	}
	for _, outside := range planes {
		if outside(t.V[0].Clip) && outside(t.V[1].Clip) && outside(t.V[2].Clip) {
			return true
		}
	}
	return false
}

// clipNear clips a triangle against the near plane z=0 (Vulkan depth
// convention), returning 0, 1, or 2 triangles.
func clipNear(t Tri) []Tri {
	const eps = 1e-6
	inside := func(v ClipVert) bool { return v.Clip.Z >= 0 && v.Clip.W > eps }
	var in, outv []int
	for i := range t.V {
		if inside(t.V[i]) {
			in = append(in, i)
		} else {
			outv = append(outv, i)
		}
	}
	switch len(in) {
	case 3:
		return []Tri{t}
	case 0:
		return nil
	}
	// Intersection parameter along edge a→b where z crosses 0.
	cross := func(a, b ClipVert) ClipVert {
		den := a.Clip.Z - b.Clip.Z
		tpar := float32(0.5)
		if gmath.Abs(den) > eps {
			tpar = a.Clip.Z / den
		}
		return lerpClipVert(a, b, gmath.Clamp(tpar, 0, 1))
	}
	if len(in) == 1 {
		a := t.V[in[0]]
		b := cross(a, t.V[outv[0]])
		c := cross(a, t.V[outv[1]])
		return []Tri{{V: [3]ClipVert{a, b, c}}}
	}
	// Two inside: quad → two triangles.
	a, b := t.V[in[0]], t.V[in[1]]
	c := cross(b, t.V[outv[0]])
	d := cross(a, t.V[outv[0]])
	return []Tri{
		{V: [3]ClipVert{a, b, c}},
		{V: [3]ClipVert{a, c, d}},
	}
}

// isBackface tests winding via the signed area in NDC.
func isBackface(t Tri) bool {
	var ndc [3]gmath.Vec2
	for i, v := range t.V {
		if v.Clip.W <= 0 {
			return false
		}
		inv := 1 / v.Clip.W
		ndc[i] = gmath.Vec2{X: v.Clip.X * inv, Y: v.Clip.Y * inv}
	}
	area := (ndc[1].X-ndc[0].X)*(ndc[2].Y-ndc[0].Y) - (ndc[2].X-ndc[0].X)*(ndc[1].Y-ndc[0].Y)
	return area <= 0
}
