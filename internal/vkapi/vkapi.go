// Package vkapi provides the Vulkan-style front API of the simulator: the
// application records state changes and draws into a CommandBuffer, then
// QueueSubmit triggers the functional simulation of the frame — the same
// capture point the paper uses (the Mesa driver forwards recorded commands
// and vkQueueSubmit starts the simulation).
//
// The API is deliberately narrow: it implements the command subset the
// evaluated workloads need (pipeline binds, vertex/index buffer binds,
// texture binds, draws, instanced draws), mirroring the paper's approach
// of implementing "enough APIs to support" its applications rather than
// the full specification.
package vkapi

import (
	"fmt"

	"crisp/internal/geom"
	"crisp/internal/gmath"
	"crisp/internal/render"
	"crisp/internal/shader"
)

// cmdKind enumerates recorded command types.
type cmdKind uint8

const (
	cmdBindPipeline cmdKind = iota
	cmdBindVertexBuffer
	cmdBindMaterial
	cmdSetModelMatrix
	cmdDraw
	cmdDrawInstanced
)

// command is one recorded entry.
type command struct {
	kind      cmdKind
	mat       *render.Material
	mesh      *geom.Mesh
	model     gmath.Mat4
	instances []render.Instance
	label     string
}

// CommandBuffer records commands until submission.
type CommandBuffer struct {
	cmds     []command
	recorded bool
}

// Begin starts recording (vkBeginCommandBuffer).
func (cb *CommandBuffer) Begin() {
	cb.cmds = cb.cmds[:0]
	cb.recorded = true
}

// BindMaterial records a pipeline + descriptor-set bind.
func (cb *CommandBuffer) BindMaterial(m *render.Material) {
	cb.cmds = append(cb.cmds, command{kind: cmdBindMaterial, mat: m})
}

// BindVertexBuffer records a vertex/index buffer bind.
func (cb *CommandBuffer) BindVertexBuffer(m *geom.Mesh) {
	cb.cmds = append(cb.cmds, command{kind: cmdBindVertexBuffer, mesh: m})
}

// SetModelMatrix records a push-constant model transform.
func (cb *CommandBuffer) SetModelMatrix(m gmath.Mat4) {
	cb.cmds = append(cb.cmds, command{kind: cmdSetModelMatrix, model: m})
}

// Draw records a draw of the bound mesh with the bound material.
func (cb *CommandBuffer) Draw(label string) {
	cb.cmds = append(cb.cmds, command{kind: cmdDraw, label: label})
}

// DrawInstanced records an instanced draw.
func (cb *CommandBuffer) DrawInstanced(label string, instances []render.Instance) {
	cb.cmds = append(cb.cmds, command{kind: cmdDrawInstanced, label: label, instances: instances})
}

// End finishes recording (vkEndCommandBuffer).
func (cb *CommandBuffer) End() { cb.recorded = false }

// Queue owns submission state: the camera/light environment and render
// options.
type Queue struct {
	Cam   render.Camera
	Light shader.Light
	Opts  render.Options
}

// Submit replays the command buffer into the rendering pipeline and runs
// the functional simulation of the frame (vkQueueSubmit). It returns the
// rendered frame with its recorded traces.
func (q *Queue) Submit(name string, cb *CommandBuffer) (*render.Result, error) {
	if cb.recorded {
		return nil, fmt.Errorf("vkapi: submit of a command buffer still recording (missing End)")
	}
	frame := &render.FrameDef{Name: name, Cam: q.Cam, Light: q.Light}
	var mat *render.Material
	var mesh *geom.Mesh
	model := gmath.Identity()
	for i, c := range cb.cmds {
		switch c.kind {
		case cmdBindMaterial:
			mat = c.mat
		case cmdBindVertexBuffer:
			mesh = c.mesh
		case cmdSetModelMatrix:
			model = c.model
		case cmdDraw, cmdDrawInstanced:
			if mat == nil || mesh == nil {
				return nil, fmt.Errorf("vkapi: draw %d (%q) without bound material/vertex buffer", i, c.label)
			}
			dc := render.DrawCall{Name: c.label, Mesh: mesh, Model: model, Mat: mat}
			if c.kind == cmdDrawInstanced {
				if len(c.instances) == 0 {
					return nil, fmt.Errorf("vkapi: instanced draw %q with no instances", c.label)
				}
				dc.Instances = c.instances
			}
			frame.Draws = append(frame.Draws, dc)
		}
	}
	if len(frame.Draws) == 0 {
		return nil, fmt.Errorf("vkapi: command buffer has no draws")
	}
	return render.RenderFrame(frame, q.Opts)
}
