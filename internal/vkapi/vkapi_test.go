package vkapi

import (
	"testing"

	"crisp/internal/gmath"
	"crisp/internal/render"
	"crisp/internal/scene"
	"crisp/internal/shader"
	"crisp/internal/texture"
)

func testQueue() *Queue {
	pos := gmath.V3(0, 1, 6)
	return &Queue{
		Cam: render.Camera{
			View: gmath.LookAt(pos, gmath.V3(0, 0, 0), gmath.V3(0, 1, 0)),
			Proj: gmath.Perspective(1, 16.0/9, 0.1, 100),
			Pos:  pos,
		},
		Light: shader.Light{Dir: gmath.V3(0, 1, 0), Color: gmath.V3(1, 1, 1), Ambient: gmath.V3(0.2, 0.2, 0.2), CameraPos: pos},
		Opts:  optsSmall(),
	}
}

func optsSmall() render.Options {
	o := render.DefaultOptions()
	o.W, o.H = 96, 54
	return o
}

func basicMaterial() *render.Material {
	return &render.Material{
		Kind:   render.MatBasic,
		Albedo: texture.Checker("t", texture.FormatRGBA8, 64, 64, gmath.V4(1, 1, 1, 1), gmath.V4(0.2, 0.2, 0.2, 1), 4),
	}
}

func TestRecordSubmit(t *testing.T) {
	var cb CommandBuffer
	cb.Begin()
	cb.BindMaterial(basicMaterial())
	cb.BindVertexBuffer(scene.Box(2, 2, 2))
	cb.SetModelMatrix(gmath.RotateY(0.4))
	cb.Draw("box")
	cb.End()

	res, err := testQueue().Submit("frame", &cb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredPixels() == 0 {
		t.Error("submitted frame painted nothing")
	}
	if len(res.Streams) == 0 {
		t.Error("no traces recorded")
	}
}

func TestSubmitWhileRecordingFails(t *testing.T) {
	var cb CommandBuffer
	cb.Begin()
	cb.BindMaterial(basicMaterial())
	cb.BindVertexBuffer(scene.Box(1, 1, 1))
	cb.Draw("box")
	if _, err := testQueue().Submit("frame", &cb); err == nil {
		t.Error("submit during recording accepted")
	}
}

func TestDrawWithoutBindsFails(t *testing.T) {
	var cb CommandBuffer
	cb.Begin()
	cb.Draw("nothing")
	cb.End()
	if _, err := testQueue().Submit("frame", &cb); err == nil {
		t.Error("draw without binds accepted")
	}
}

func TestEmptySubmitFails(t *testing.T) {
	var cb CommandBuffer
	cb.Begin()
	cb.End()
	if _, err := testQueue().Submit("frame", &cb); err == nil {
		t.Error("empty command buffer accepted")
	}
}

func TestInstancedDraw(t *testing.T) {
	var cb CommandBuffer
	cb.Begin()
	lay := texture.Noise("l", texture.FormatRGBA8, 32, 32, 2, 5)
	cb.BindMaterial(&render.Material{Kind: render.MatPlanet, Layered: lay})
	cb.BindVertexBuffer(scene.UVSphere(0.8, 10, 8))
	cb.DrawInstanced("spheres", []render.Instance{
		{Model: gmath.Translate(gmath.V3(-1, 0, 0)), Layer: 0},
		{Model: gmath.Translate(gmath.V3(1, 0, 0)), Layer: 1},
	})
	cb.End()
	res, err := testQueue().Submit("frame", &cb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics[0].Instances != 2 {
		t.Errorf("instances = %d", res.Metrics[0].Instances)
	}
	var cb2 CommandBuffer
	cb2.Begin()
	cb2.BindMaterial(&render.Material{Kind: render.MatPlanet, Layered: lay})
	cb2.BindVertexBuffer(scene.UVSphere(0.8, 10, 8))
	cb2.DrawInstanced("none", nil)
	cb2.End()
	if _, err := testQueue().Submit("frame", &cb2); err == nil {
		t.Error("instanced draw with no instances accepted")
	}
}

func TestRebindBetweenDraws(t *testing.T) {
	var cb CommandBuffer
	cb.Begin()
	cb.BindMaterial(basicMaterial())
	cb.BindVertexBuffer(scene.Box(2, 2, 2))
	cb.Draw("a")
	cb.SetModelMatrix(gmath.Translate(gmath.V3(1.5, 0, 0)))
	cb.BindVertexBuffer(scene.UVSphere(1, 10, 8))
	cb.Draw("b")
	cb.End()
	res, err := testQueue().Submit("frame", &cb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 2 {
		t.Errorf("draws = %d, want 2", len(res.Metrics))
	}
}

func TestBeginResetsCommands(t *testing.T) {
	var cb CommandBuffer
	cb.Begin()
	cb.BindMaterial(basicMaterial())
	cb.BindVertexBuffer(scene.Box(1, 1, 1))
	cb.Draw("first")
	cb.End()
	cb.Begin()
	cb.BindMaterial(basicMaterial())
	cb.BindVertexBuffer(scene.Box(1, 1, 1))
	cb.Draw("second")
	cb.End()
	res, err := testQueue().Submit("frame", &cb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 1 || res.Metrics[0].Name != "second" {
		t.Errorf("Begin did not reset: %v draws", len(res.Metrics))
	}
}
