package robust

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSimErrorMessageAndUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	err := &SimError{Kind: KindDeadlock, Cycle: 42, Msg: "kernel stuck", Err: cause}
	msg := err.Error()
	for _, want := range []string{"deadlock", "42", "kernel stuck", "root cause"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	if !errors.Is(err, cause) {
		t.Error("Unwrap lost the cause")
	}
}

func TestAsSimError(t *testing.T) {
	inner := &SimError{Kind: KindWatchdog, Cycle: 7, Msg: "stuck"}
	wrapped := fmt.Errorf("run failed: %w", inner)
	se, ok := AsSimError(wrapped)
	if !ok || se.Kind != KindWatchdog {
		t.Fatalf("AsSimError = %v, %v", se, ok)
	}
	if _, ok := AsSimError(errors.New("plain")); ok {
		t.Error("plain error reported as SimError")
	}
}

func TestKindNames(t *testing.T) {
	for k, want := range map[Kind]string{
		KindValidation: "validation",
		KindDeadlock:   "deadlock",
		KindWatchdog:   "watchdog",
		KindBudget:     "budget",
		KindCanceled:   "canceled",
		KindPanic:      "panic",
	} {
		if k.String() != want {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCrashDumpJSONRoundTrip(t *testing.T) {
	d := &CrashDump{
		Cycle:  100,
		Config: "JetsonOrin",
		Policy: "EVEN",
		Kernel: "vio_k3",
		Reason: "cannot place CTAs",
		SMs: []SMState{
			{ID: 0, ResidentWarps: 8, WarpsByTask: map[int]int{0: 6, 1: 2}, UsedThreads: 256},
		},
		Streams: []StreamState{
			{ID: 1 << 20, Label: "VIO", Task: 1, KernelsDone: 2, KernelsTotal: 5, Active: true,
				Running: &KernelProgress{Name: "vio_k3", CTAsIssued: 4, CTAsDone: 1, CTAsTotal: 16, LaunchedAt: 90}},
		},
		StreamsCompleted: 3,
		Stalls: []TaskStalls{
			{Task: 1, Label: "VIO", Issues: 1000, Stalls: map[string]int64{"scoreboard": 50}},
		},
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back CrashDump
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("dump JSON does not round-trip: %v", err)
	}
	if back.Kernel != "vio_k3" || back.SMs[0].WarpsByTask[1] != 2 ||
		back.Streams[0].Running.CTAsTotal != 16 || back.Stalls[0].Stalls["scoreboard"] != 50 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestRecoverAsError(t *testing.T) {
	boom := func() (err error) {
		defer RecoverAsError(&err, "test.Boom")
		panic("exploded")
	}
	err := boom()
	se, ok := AsSimError(err)
	if !ok || se.Kind != KindPanic {
		t.Fatalf("recovered error = %v", err)
	}
	if !strings.Contains(se.Msg, "exploded") || !strings.Contains(se.Msg, "test.Boom") {
		t.Errorf("panic message lost: %q", se.Msg)
	}

	clean := func() (err error) {
		defer RecoverAsError(&err, "test.Clean")
		return nil
	}
	if err := clean(); err != nil {
		t.Errorf("no-panic path produced error %v", err)
	}
}

func TestRecoverAsErrorKeepsErrorCause(t *testing.T) {
	cause := errors.New("typed cause")
	boom := func() (err error) {
		defer RecoverAsError(&err, "test.Boom")
		panic(cause)
	}
	if !errors.Is(boom(), cause) {
		t.Error("panic(error) cause not preserved through recovery")
	}
}
