package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"crisp/internal/config"
	"crisp/internal/robust"
	"crisp/internal/snapshot"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=7,kill@9000,corrupt=truncate,delay=20ms,kills=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Seed: 7, KillCycle: 9000, Kills: 2, CorruptLatest: "truncate", Delay: 20 * time.Millisecond}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if !spec.Enabled() {
		t.Fatal("spec should be enabled")
	}

	// kills defaults to 1 when a kill cycle is set.
	spec, err = ParseSpec("kill@500")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kills != 1 {
		t.Fatalf("default kills = %d, want 1", spec.Kills)
	}

	// Round trip through String.
	again, err := ParseSpec(spec.String())
	if err != nil || again != spec {
		t.Fatalf("round trip: %+v vs %+v (%v)", again, spec, err)
	}

	if s, err := ParseSpec(""); err != nil || s.Enabled() {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"kill@x", "kill@-1", "corrupt=explode", "delay=fast", "frobnicate", "kills=-2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestControllerBudgetsPerDigest(t *testing.T) {
	ctrl := NewController(Spec{KillCycle: 9000, Kills: 2, CorruptLatest: "flip"})
	if ctrl == nil {
		t.Fatal("enabled spec should build a controller")
	}

	// Corruption never fires before a kill has fired for the digest.
	if _, ok := ctrl.TakeCorrupt("aaaa"); ok {
		t.Fatal("TakeCorrupt before any kill should not fire")
	}

	// Kill budget is per digest.
	for i := 0; i < 2; i++ {
		cycle, ok := ctrl.TakeKill("aaaa")
		if !ok || cycle != 9000 {
			t.Fatalf("kill %d: cycle=%d ok=%v", i, cycle, ok)
		}
	}
	if _, ok := ctrl.TakeKill("aaaa"); ok {
		t.Fatal("third kill for one digest should not fire (kills=2)")
	}
	if _, ok := ctrl.TakeKill("bbbb"); !ok {
		t.Fatal("another digest has its own kill budget")
	}

	// Corruption fires exactly once per digest, only after a kill.
	if mode, ok := ctrl.TakeCorrupt("aaaa"); !ok || mode != "flip" {
		t.Fatalf("TakeCorrupt after kill: mode=%q ok=%v", mode, ok)
	}
	if _, ok := ctrl.TakeCorrupt("aaaa"); ok {
		t.Fatal("second corruption for one digest should not fire")
	}

	kills, corruptions := ctrl.Stats()
	if kills != 3 || corruptions != 1 {
		t.Fatalf("stats = %d kills, %d corruptions; want 3, 1", kills, corruptions)
	}
}

func TestNilControllerIsInert(t *testing.T) {
	var ctrl *Controller
	if _, ok := ctrl.TakeKill("x"); ok {
		t.Fatal("nil TakeKill fired")
	}
	if _, ok := ctrl.TakeCorrupt("x"); ok {
		t.Fatal("nil TakeCorrupt fired")
	}
	if d := ctrl.CompletionDelay(); d != 0 {
		t.Fatalf("nil delay = %v", d)
	}
	if k, c := ctrl.Stats(); k != 0 || c != 0 {
		t.Fatal("nil stats nonzero")
	}
	if NewController(Spec{}) != nil {
		t.Fatal("empty spec should build a nil controller")
	}
}

func TestInjectedIsRetryableEvenWrapped(t *testing.T) {
	inj := Injected(9000)
	if !robust.RetryableError(inj) {
		t.Fatal("injected fault must be retryable")
	}
	// The facade's panic firewall wraps the injected fault in KindPanic;
	// classification must still find the injected cause.
	wrapped := &robust.SimError{Kind: robust.KindPanic, Msg: "recovered panic", Err: inj}
	if got := robust.DeepestKind(wrapped); got != robust.KindInjected {
		t.Fatalf("DeepestKind = %v, want injected", got)
	}
	if !robust.RetryableError(fmt.Errorf("run: %w", wrapped)) {
		t.Fatal("wrapped injected fault must stay retryable")
	}
}

// ckptDir writes two real checkpoints (cycles 100 and 200) and returns the
// directory — the fixture every corruption test damages.
func ckptDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st := &snapshot.Store{Dir: dir}
	for _, c := range []int64{100, 200} {
		env := &snapshot.Envelope{
			Version: snapshot.FormatVersion,
			Spec:    snapshot.Spec{GPU: config.JetsonOrin(), Scene: "SPL", Policy: "EVEN"},
		}
		env.State.Arch.Cycle = c
		if _, err := st.Save(env); err != nil {
			t.Fatalf("save %d: %v", c, err)
		}
	}
	return dir
}

func TestCorruptForcesFallback(t *testing.T) {
	for _, mode := range []string{"truncate", "flip"} {
		t.Run(mode, func(t *testing.T) {
			dir := ckptDir(t)
			damaged, err := Corrupt(dir, mode, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(damaged, "ckpt-") {
				t.Fatalf("damaged %s, want the newest periodic checkpoint", damaged)
			}
			if _, err := snapshot.LoadFile(damaged); err == nil {
				t.Fatalf("%s-damaged checkpoint still loads", mode)
			}
			env, corrupt, err := snapshot.LoadNewest(dir)
			if err != nil {
				t.Fatalf("LoadNewest after %s: %v", mode, err)
			}
			if env.State.Arch.Cycle != 100 {
				t.Fatalf("fell back to cycle %d, want 100", env.State.Arch.Cycle)
			}
			if len(corrupt) != 1 {
				t.Fatalf("corrupt list = %v, want the one damaged file", corrupt)
			}
		})
	}
}

func TestCorruptEmptyDir(t *testing.T) {
	if _, err := Corrupt(t.TempDir(), "truncate", 0); err == nil {
		t.Fatal("Corrupt on empty dir should fail")
	}
}
