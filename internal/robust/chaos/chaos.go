// Package chaos is CRISP's service-level fault-injection harness: seeded,
// reproducible faults planted into crispd's supervised execution path so
// the retry/recovery machinery can be exercised deterministically — in
// tests, in CI's chaos-recovery gate, and interactively via `crispd -chaos`.
//
// Three fault kinds, all driven by one Spec:
//
//   - kill@N — the running simulation dies at simulated cycle N. In-process
//     this is a panic carrying a KindInjected SimError (thrown from the
//     metrics sink on the sim goroutine, so the core's deferred recovery
//     still flushes a final snapshot); in -isolate mode the worker process
//     SIGKILLs itself, leaving no final snapshot at all and forcing the
//     supervisor onto the periodic-checkpoint fallback.
//   - corrupt=truncate|flip — after a kill, before the retry resumes, the
//     newest checkpoint in the job's directory is damaged (truncated to
//     half, or one body byte flipped), forcing snapshot.LoadNewest to fall
//     back to the previous checkpoint.
//   - delay=D — completion of every job is delayed by D (scheduling skew,
//     slow-worker emulation).
//
// Faults are budgeted per job digest: a kill fires at most Kills times
// (default 1) and a corruption at most once, so a retried job converges
// instead of hot-looping — the whole point is to prove that every chaos
// schedule still ends in the bit-identical result digest.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crisp/internal/robust"
	"crisp/internal/snapshot"
)

// Spec is a parsed chaos schedule.
type Spec struct {
	// Seed keys any randomized choice the harness makes (currently the
	// flip offset perturbation); the same spec + seed plants byte-identical
	// faults.
	Seed int64
	// KillCycle kills the simulation at this simulated cycle (0 = no kill).
	KillCycle int64
	// Kills is how many attempts per job digest get killed (default 1 when
	// KillCycle > 0): kills=2 kills the first run AND its first retry.
	Kills int
	// CorruptLatest, when non-empty, damages the newest checkpoint before
	// the first post-kill resume: "truncate" or "flip".
	CorruptLatest string
	// Delay postpones every job completion by this duration.
	Delay time.Duration
	// HBDrop strikes this many fleet leases deaf: renewals for a deaf
	// lease are swallowed (at most one lease per task digest, HBDrop
	// digests total), so the lease expires mid-run and the coordinator
	// must revoke it and reassign the task to a healthy worker.
	HBDrop int
	// HBDelay postpones every heartbeat renewal's delivery to the lease
	// table by this duration — slow-RPC emulation on the
	// coordinator↔worker supervision path.
	HBDelay time.Duration
}

// ParseSpec parses the `-chaos` flag syntax: comma-separated tokens
//
//	seed=7,kill@9000,kills=2,corrupt=truncate,delay=20ms
//
// Every token is optional; an empty string is a valid no-op spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		switch {
		case strings.HasPrefix(tok, "kill@"):
			n, err := strconv.ParseInt(tok[len("kill@"):], 10, 64)
			if err != nil || n <= 0 {
				return Spec{}, fmt.Errorf("chaos: bad kill cycle %q", tok)
			}
			spec.KillCycle = n
		case strings.HasPrefix(tok, "kills="):
			n, err := strconv.Atoi(tok[len("kills="):])
			if err != nil || n < 0 {
				return Spec{}, fmt.Errorf("chaos: bad kill count %q", tok)
			}
			spec.Kills = n
		case strings.HasPrefix(tok, "seed="):
			n, err := strconv.ParseInt(tok[len("seed="):], 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("chaos: bad seed %q", tok)
			}
			spec.Seed = n
		case strings.HasPrefix(tok, "corrupt="):
			mode := tok[len("corrupt="):]
			if mode != "truncate" && mode != "flip" {
				return Spec{}, fmt.Errorf("chaos: corrupt mode %q (want truncate or flip)", mode)
			}
			spec.CorruptLatest = mode
		case strings.HasPrefix(tok, "delay="):
			d, err := time.ParseDuration(tok[len("delay="):])
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("chaos: bad delay %q", tok)
			}
			spec.Delay = d
		case strings.HasPrefix(tok, "hbdrop="):
			n, err := strconv.Atoi(tok[len("hbdrop="):])
			if err != nil || n < 0 {
				return Spec{}, fmt.Errorf("chaos: bad heartbeat-drop count %q", tok)
			}
			spec.HBDrop = n
		case strings.HasPrefix(tok, "hbdelay="):
			d, err := time.ParseDuration(tok[len("hbdelay="):])
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("chaos: bad heartbeat delay %q", tok)
			}
			spec.HBDelay = d
		default:
			return Spec{}, fmt.Errorf("chaos: unknown token %q", tok)
		}
	}
	if spec.KillCycle > 0 && spec.Kills == 0 {
		spec.Kills = 1
	}
	return spec, nil
}

// String renders the spec back in flag syntax (for logs).
func (s Spec) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if s.KillCycle > 0 {
		parts = append(parts, fmt.Sprintf("kill@%d", s.KillCycle))
		if s.Kills != 1 {
			parts = append(parts, fmt.Sprintf("kills=%d", s.Kills))
		}
	}
	if s.CorruptLatest != "" {
		parts = append(parts, "corrupt="+s.CorruptLatest)
	}
	if s.Delay > 0 {
		parts = append(parts, "delay="+s.Delay.String())
	}
	if s.HBDrop > 0 {
		parts = append(parts, fmt.Sprintf("hbdrop=%d", s.HBDrop))
	}
	if s.HBDelay > 0 {
		parts = append(parts, "hbdelay="+s.HBDelay.String())
	}
	return strings.Join(parts, ",")
}

// Enabled reports whether the spec plants any fault at all.
func (s Spec) Enabled() bool {
	return s.KillCycle > 0 || s.CorruptLatest != "" || s.Delay > 0 ||
		s.HBDrop > 0 || s.HBDelay > 0
}

// Controller budgets a Spec's faults across job attempts. All methods are
// safe for concurrent use and safe on a nil receiver (every Take reports
// false), so callers hold one optional *Controller with no nil checks.
type Controller struct {
	spec Spec

	mu        sync.Mutex
	kills     map[string]int  // digest → kills already fired
	corrupted map[string]bool // digest → corruption already fired
	hbDropped map[string]bool // digest → a lease was already struck deaf

	killsFired       atomic.Int64
	corruptionsFired atomic.Int64
	hbDropsFired     atomic.Int64
}

// NewController builds a Controller for spec; nil when the spec is empty,
// so `ctrl := chaos.NewController(spec)` composes with the nil-safe API.
func NewController(spec Spec) *Controller {
	if !spec.Enabled() {
		return nil
	}
	return &Controller{
		spec:      spec,
		kills:     make(map[string]int),
		corrupted: make(map[string]bool),
		hbDropped: make(map[string]bool),
	}
}

// Spec returns the controller's schedule (zero Spec on nil).
func (c *Controller) Spec() Spec {
	if c == nil {
		return Spec{}
	}
	return c.spec
}

// TakeKill reserves one kill for this job digest: it reports the cycle at
// which the starting attempt must die, or ok=false when the digest's kill
// budget is spent (or no kill is scheduled). The reservation is consumed —
// the retry that follows a taken kill runs to completion.
func (c *Controller) TakeKill(digest string) (cycle int64, ok bool) {
	if c == nil || c.spec.KillCycle <= 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.kills[digest] >= c.spec.Kills {
		return 0, false
	}
	c.kills[digest]++
	c.killsFired.Add(1)
	return c.spec.KillCycle, true
}

// TakeCorrupt reserves the one checkpoint corruption for this digest. It
// only fires after a kill has fired for the same digest — corruption
// models damage discovered on the recovery path, so it is planted exactly
// when a retry is about to resume.
func (c *Controller) TakeCorrupt(digest string) (mode string, ok bool) {
	if c == nil || c.spec.CorruptLatest == "" {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.kills[digest] == 0 || c.corrupted[digest] {
		return "", false
	}
	c.corrupted[digest] = true
	c.corruptionsFired.Add(1)
	return c.spec.CorruptLatest, true
}

// CompletionDelay is the scheduled per-job completion delay (0 on nil).
func (c *Controller) CompletionDelay() time.Duration {
	if c == nil {
		return 0
	}
	return c.spec.Delay
}

// TakeHBDrop reserves one deaf lease for this task digest: when it
// reports true, the lease granted for the starting attempt must swallow
// its renewals so it expires mid-run. At most one lease per digest and
// HBDrop digests total go deaf — the reassigned attempt's lease renews
// normally, so every chaos schedule converges.
func (c *Controller) TakeHBDrop(digest string) bool {
	if c == nil || c.spec.HBDrop <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hbDropped[digest] || int(c.hbDropsFired.Load()) >= c.spec.HBDrop {
		return false
	}
	c.hbDropped[digest] = true
	c.hbDropsFired.Add(1)
	return true
}

// HeartbeatDelay is the scheduled per-renewal delivery delay (0 on nil).
func (c *Controller) HeartbeatDelay() time.Duration {
	if c == nil {
		return 0
	}
	return c.spec.HBDelay
}

// HeartbeatDrops reports how many leases were struck deaf, for /metrics.
func (c *Controller) HeartbeatDrops() int64 {
	if c == nil {
		return 0
	}
	return c.hbDropsFired.Load()
}

// Stats reports total faults fired, for /metrics.
func (c *Controller) Stats() (kills, corruptions int64) {
	if c == nil {
		return 0, 0
	}
	return c.killsFired.Load(), c.corruptionsFired.Load()
}

// Injected builds the KindInjected SimError an in-process kill panics
// with. The panic crosses the core's deferred recovery (which flushes the
// final snapshot) and surfaces at the facade wrapped in KindPanic —
// robust.DeepestKind recovers the injected classification.
func Injected(cycle int64) *robust.SimError {
	return &robust.SimError{
		Kind:  robust.KindInjected,
		Cycle: cycle,
		Msg:   fmt.Sprintf("chaos: injected kill at cycle %d", cycle),
	}
}

// Corrupt damages the newest checkpoint in dir according to mode
// ("truncate" halves the file, "flip" inverts one body byte past the
// header) and returns the damaged path. The damage is exactly what
// snapshot.LoadNewest must survive: detect, rename aside, fall back.
func Corrupt(dir, mode string, seed int64) (string, error) {
	cands := snapshot.Candidates(dir)
	if len(cands) == 0 {
		return "", fmt.Errorf("chaos: no checkpoint to corrupt in %s", dir)
	}
	path := cands[0]
	info, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("chaos: stat %s: %w", path, err)
	}
	switch mode {
	case "truncate":
		if err := os.Truncate(path, info.Size()/2); err != nil {
			return "", fmt.Errorf("chaos: truncate %s: %w", path, err)
		}
	case "flip":
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return "", fmt.Errorf("chaos: open %s: %w", path, err)
		}
		defer f.Close()
		// Flip a byte inside the gzip body: past the JSON header line but
		// inside the file. Perturb the offset with the seed so different
		// schedules damage different bytes, deterministically.
		off := info.Size()/2 + seed%16
		if off >= info.Size() {
			off = info.Size() - 1
		}
		if off < 0 {
			off = 0
		}
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			return "", fmt.Errorf("chaos: read %s: %w", path, err)
		}
		b[0] ^= 0xFF
		if _, err := f.WriteAt(b[:], off); err != nil {
			return "", fmt.Errorf("chaos: write %s: %w", path, err)
		}
	default:
		return "", fmt.Errorf("chaos: unknown corrupt mode %q", mode)
	}
	return path, nil
}
