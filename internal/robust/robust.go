// Package robust is CRISP's simulation-hardening layer: the structured
// error type every abnormal simulation outcome resolves to, the crash-dump
// schema attached to it for postmortems, and the panic-recovery helper the
// public API boundary uses so programmer errors inside the simulator
// surface as errors instead of crashing library consumers.
//
// The package sits below every simulator layer (gpu, core, the public
// crisp package import it; it imports nothing but the standard library),
// so any layer can construct a SimError without import cycles.
//
// Failure taxonomy:
//
//   - KindValidation — a trace, stream, or configuration failed a
//     structural check before the run started (fail-fast).
//   - KindDeadlock — a kernel's CTAs can never be placed: either detected
//     statically at AddStream (a CTA exceeding the whole SM) or at run
//     time (CTAs pending, nothing executing, nothing placeable under the
//     installed partition policy).
//   - KindWatchdog — the forward-progress watchdog tripped: warps are
//     resident but no instruction retired for the configured window
//     (livelocks, e.g. a warp that never arrives at a CTA barrier).
//   - KindBudget — the run exceeded its hard cycle budget.
//   - KindCanceled — the caller's context was canceled mid-run.
//   - KindPanic — a panic escaped the simulator internals and was
//     converted to an error at the public API boundary.
//   - KindSnapshot — a checkpoint could not be written, or a snapshot
//     file was corrupt, truncated, version-mismatched, or inconsistent
//     with the simulator it was being restored into.
//   - KindInjected — a chaos-harness fault deliberately killed the run
//     (supervision and recovery testing; see internal/robust/chaos).
//   - KindCrash — an isolated worker process died without reporting a
//     result (SIGKILL, OOM kill, runtime fault): the supervisor only
//     knows the process is gone.
//
// The taxonomy doubles as the retry policy's classification: Kind.Retryable
// partitions failures into those a supervisor should retry from the latest
// checkpoint (transient or environmental: watchdog, budget, panic,
// snapshot, injected, crash) and those that are deterministic properties
// of the job itself (validation, deadlock), which retrying can never fix.
package robust

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
)

// Kind classifies a SimError.
type Kind uint8

const (
	// KindValidation marks a pre-run structural check failure.
	KindValidation Kind = iota
	// KindDeadlock marks an unplaceable kernel (static or runtime).
	KindDeadlock
	// KindWatchdog marks a forward-progress watchdog trip.
	KindWatchdog
	// KindBudget marks a cycle-budget overrun.
	KindBudget
	// KindCanceled marks a context cancellation.
	KindCanceled
	// KindPanic marks a recovered internal panic.
	KindPanic
	// KindSnapshot marks a checkpoint/restore failure: a corrupt,
	// truncated, or version-mismatched snapshot file, or a snapshot whose
	// state is inconsistent with the simulator it is being restored into.
	KindSnapshot
	// KindInjected marks a fault deliberately planted by the chaos
	// harness (internal/robust/chaos) to exercise supervision paths.
	KindInjected
	// KindCrash marks an isolated worker process that died without
	// reporting a result: the supervisor saw the process exit (signal,
	// OOM kill, nonzero status) with the protocol stream incomplete.
	KindCrash
)

var kindNames = [...]string{
	KindValidation: "validation",
	KindDeadlock:   "deadlock",
	KindWatchdog:   "watchdog",
	KindBudget:     "budget",
	KindCanceled:   "canceled",
	KindPanic:      "panic",
	KindSnapshot:   "snapshot",
	KindInjected:   "injected",
	KindCrash:      "crash",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromString inverts Kind.String — the worker wire protocol sends kinds
// by name. Unknown names report ok=false.
func KindFromString(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Retryable reports whether a failure of this kind is worth retrying from
// a checkpoint. Watchdog trips, budget overruns, panics, snapshot damage,
// injected chaos faults, and worker crashes are transient or environmental
// — a retry from the latest checkpoint can complete. Validation and
// deadlock failures are deterministic properties of the job: every retry
// reproduces them, so a supervisor must fail such jobs permanently.
// Cancellation is not a failure and is never retried.
func (k Kind) Retryable() bool {
	switch k {
	case KindWatchdog, KindBudget, KindPanic, KindSnapshot, KindInjected, KindCrash:
		return true
	}
	return false
}

// RetryableError classifies an error chain: true iff it carries a SimError
// whose deepest SimError kind is retryable. The deepest kind wins because
// the panic firewall wraps an injected chaos fault in a KindPanic envelope
// — the inner kind is the real cause.
func RetryableError(err error) bool {
	se, ok := AsSimError(err)
	if !ok {
		return false
	}
	return DeepestKind(se).Retryable()
}

// DeepestKind walks the wrapped-cause chain of a SimError and returns the
// innermost SimError's kind — the original failure, before any wrapping by
// recovery layers.
func DeepestKind(se *SimError) Kind {
	kind := se.Kind
	for se.Err != nil {
		var inner *SimError
		if !errors.As(se.Err, &inner) {
			break
		}
		se = inner
		kind = se.Kind
	}
	return kind
}

// SimError is the structured error for every abnormal simulation outcome.
// It carries the failure class, the simulated cycle at which the failure
// was detected, and — for failures inside a running simulation — a crash
// dump of machine state for postmortems.
type SimError struct {
	Kind  Kind
	Cycle int64
	// Msg is the human-readable failure description.
	Msg string
	// Dump is the machine-state snapshot at failure (nil for failures
	// before a GPU existed, e.g. config parse errors).
	Dump *CrashDump
	// Err is the wrapped cause, when the failure wraps another error.
	Err error
}

// Error implements error.
func (e *SimError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("sim %s at cycle %d: %s: %v", e.Kind, e.Cycle, e.Msg, e.Err)
	}
	return fmt.Sprintf("sim %s at cycle %d: %s", e.Kind, e.Cycle, e.Msg)
}

// Unwrap exposes the wrapped cause to errors.Is/As.
func (e *SimError) Unwrap() error { return e.Err }

// AsSimError extracts a SimError from an error chain.
func AsSimError(err error) (*SimError, bool) {
	var se *SimError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// CrashDump is the JSON-serializable postmortem snapshot attached to
// runtime SimErrors: where every SM and stream stood when the run died.
type CrashDump struct {
	// Cycle is the simulated cycle at failure.
	Cycle int64 `json:"cycle"`
	// Config and Policy identify the machine and partitioning scheme.
	Config string `json:"config"`
	Policy string `json:"policy"`
	// PolicyState is the installed policy's self-description (its last
	// decision), when the policy implements gpu.StateDescriber.
	PolicyState string `json:"policy_state,omitempty"`
	// Kernel names the kernel implicated in the failure (the unplaceable
	// kernel for deadlocks, the stuck kernel for watchdog trips).
	Kernel string `json:"kernel,omitempty"`
	// Reason restates the failure in one line.
	Reason string `json:"reason"`
	// WatchdogWindow and LastProgress describe the forward-progress
	// watchdog's view at failure (watchdog trips only).
	WatchdogWindow int64 `json:"watchdog_window,omitempty"`
	LastProgress   int64 `json:"last_progress_cycle,omitempty"`
	// SMs is the per-SM occupancy snapshot.
	SMs []SMState `json:"sms"`
	// Streams lists every stream that had not drained at failure.
	Streams []StreamState `json:"streams"`
	// StreamsCompleted counts the streams omitted from Streams because
	// they finished cleanly before the failure.
	StreamsCompleted int `json:"streams_completed"`
	// Stalls is the whole-run stall-attribution snapshot by task: how the
	// machine was spending its scheduler slots before it died.
	Stalls []TaskStalls `json:"stalls,omitempty"`
}

// SMState is one SM's occupancy at failure.
type SMState struct {
	ID            int         `json:"id"`
	ResidentWarps int         `json:"resident_warps"`
	WarpsByTask   map[int]int `json:"warps_by_task,omitempty"`
	// BarrierBlocked counts resident warps parked indefinitely at a CTA
	// barrier — nonzero on every SM is the signature of a barrier livelock.
	BarrierBlocked int `json:"barrier_blocked,omitempty"`
	UsedThreads    int `json:"used_threads"`
	UsedRegs       int `json:"used_regs"`
	UsedShared     int `json:"used_shared"`
	UsedCTAs       int `json:"used_ctas"`
}

// StreamState is one undrained stream's progress at failure.
type StreamState struct {
	ID           int    `json:"id"`
	Label        string `json:"label,omitempty"`
	Task         int    `json:"task"`
	KernelsDone  int    `json:"kernels_done"`
	KernelsTotal int    `json:"kernels_total"`
	Active       bool   `json:"active"`
	// Running describes the stream's in-flight kernel, if any.
	Running *KernelProgress `json:"running,omitempty"`
}

// KernelProgress is the CTA-level progress of one in-flight kernel.
type KernelProgress struct {
	Name       string `json:"name"`
	CTAsIssued int    `json:"ctas_issued"`
	CTAsDone   int    `json:"ctas_done"`
	CTAsTotal  int    `json:"ctas_total"`
	LaunchedAt int64  `json:"launched_at"`
}

// TaskStalls is one task's scheduler-slot breakdown: issues plus
// attributed stall slots by cause name.
type TaskStalls struct {
	Task   int              `json:"task"`
	Label  string           `json:"label,omitempty"`
	Issues int64            `json:"issues"`
	Stalls map[string]int64 `json:"stalls,omitempty"`
}

// WriteJSON serializes the dump, indented for human postmortems.
func (d *CrashDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// RecoverAsError is the public-API panic firewall: deferred at the top of
// exported entry points, it converts an escaping panic into a KindPanic
// SimError carrying the panic value and stack, so library consumers never
// crash on internal programmer errors (trace.Builder misuse, texture
// binding bugs). It must be deferred directly, not called from another
// deferred function's body. A nil *errp panic value is never produced:
// re-panics of runtime.Goexit are not intercepted.
func RecoverAsError(errp *error, op string) {
	r := recover()
	if r == nil {
		return
	}
	cause, _ := r.(error)
	*errp = &SimError{
		Kind: KindPanic,
		Msg:  fmt.Sprintf("%s: recovered panic: %v\n%s", op, r, debug.Stack()),
		Err:  cause,
	}
}
