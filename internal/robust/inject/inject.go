// Package inject is a deterministic fault-injection harness for hardening
// tests: it perturbs execution traces and GPU configurations in the ways
// real trace collectors and hand-written configs go wrong — truncated
// warps, empty CTAs, missing barriers, oversized resource footprints,
// malformed memory operands — and records, for each fault, which layer of
// the simulator is expected to catch it. Tests drive the catalog to prove
// that no fault escalates past its containment layer into a hang or a
// panic.
//
// All perturbations are driven by a caller-provided *rand.Rand, so a fixed
// seed reproduces the exact same mutation.
package inject

import (
	"math/rand"

	"crisp/internal/config"
	"crisp/internal/isa"
	"crisp/internal/trace"
)

// Expect names the simulator layer that must contain a fault.
type Expect int

const (
	// ExpectValidation faults are rejected by trace.Kernel.Validate (and
	// therefore by gpu.AddStream before any simulation starts).
	ExpectValidation Expect = iota
	// ExpectAddStream faults pass Validate but describe a CTA that can
	// never fit a whole SM; gpu.AddStream rejects them with a static
	// deadlock SimError.
	ExpectAddStream
	// ExpectRuntime faults pass all static checks and hang the machine at
	// run time (e.g. a warp missing a barrier); the forward-progress
	// watchdog or barrier-livelock detection must convert the hang into a
	// watchdog SimError.
	ExpectRuntime
	// ExpectIntraSM faults produce kernels that place on a whole SM but
	// not inside a half-SM envelope: they complete under whole-SM policies
	// (Serial, MPS, MiG) and must fail with a deadlock SimError under
	// intra-SM split policies (EVEN, Priority).
	ExpectIntraSM
	// ExpectTolerated faults are benign perturbations the simulator must
	// absorb: the run completes normally.
	ExpectTolerated
)

var expectNames = map[Expect]string{
	ExpectValidation: "validation",
	ExpectAddStream:  "addstream",
	ExpectRuntime:    "runtime",
	ExpectIntraSM:    "intra-sm",
	ExpectTolerated:  "tolerated",
}

func (e Expect) String() string { return expectNames[e] }

// Fault is one trace perturbation.
type Fault struct {
	Name   string
	Expect Expect
	// Apply mutates kernels in place (callers clone first; see
	// CloneKernels), drawing randomness only from rng. It reports whether
	// the fault was applicable to the given trace — e.g. drop-barrier
	// needs a multi-warp CTA with a BAR instruction.
	Apply func(kernels []*trace.Kernel, rng *rand.Rand) bool
}

// Catalog returns the trace-fault catalog. The returned faults are
// stateless; the same slice contents are returned on every call.
func Catalog() []Fault {
	return []Fault{
		{
			// A trace writer died mid-warp: the warp's instruction list is
			// cut short and loses its terminating EXIT.
			Name:   "truncate-warp",
			Expect: ExpectValidation,
			Apply: func(ks []*trace.Kernel, rng *rand.Rand) bool {
				w := pickWarp(ks, rng, func(w *trace.Warp) bool { return len(w.Insts) >= 1 })
				if w == nil {
					return false
				}
				w.Insts = w.Insts[:len(w.Insts)-1]
				if len(w.Insts) > 0 && w.Insts[len(w.Insts)-1].Op == isa.OpEXIT {
					// Trailing EXIT duplicated; cut again so it is gone.
					w.Insts = w.Insts[:len(w.Insts)-1]
				}
				return true
			},
		},
		{
			// A zero-size CTA: the grid entry exists but carries no warps.
			Name:   "zero-cta",
			Expect: ExpectValidation,
			Apply: func(ks []*trace.Kernel, rng *rand.Rand) bool {
				k := ks[rng.Intn(len(ks))]
				if len(k.CTAs) == 0 {
					return false
				}
				k.CTAs[rng.Intn(len(k.CTAs))].Warps = nil
				return true
			},
		},
		{
			// An instruction with no active lanes — a corrupted mask.
			Name:   "empty-mask",
			Expect: ExpectValidation,
			Apply: func(ks []*trace.Kernel, rng *rand.Rand) bool {
				in := pickInst(ks, rng, func(*trace.Inst) bool { return true })
				if in == nil {
					return false
				}
				in.Mask = 0
				return true
			},
		},
		{
			// A global memory instruction whose per-lane address list does
			// not match its active mask.
			Name:   "addr-mismatch",
			Expect: ExpectValidation,
			Apply: func(ks []*trace.Kernel, rng *rand.Rand) bool {
				in := pickInst(ks, rng, func(in *trace.Inst) bool {
					return isa.IsMemory(in.Op) && isa.SpaceOf(in.Op) == isa.SpaceGlobal && len(in.Addrs) > 0
				})
				if in == nil {
					return false
				}
				in.Addrs = in.Addrs[:len(in.Addrs)-1]
				return true
			},
		},
		{
			// A non-memory instruction dragging address operands along.
			Name:   "nonmem-addrs",
			Expect: ExpectValidation,
			Apply: func(ks []*trace.Kernel, rng *rand.Rand) bool {
				in := pickInst(ks, rng, func(in *trace.Inst) bool {
					return !isa.IsMemory(in.Op) && in.Op != isa.OpEXIT
				})
				if in == nil {
					return false
				}
				in.Addrs = []uint64{0xDEAD0000}
				return true
			},
		},
		{
			// A CTA bigger than a whole SM: more warps than any SM holds.
			// Validate passes (the trace is internally consistent); only
			// the launch-time fit check can reject it.
			Name:   "oversize-cta",
			Expect: ExpectAddStream,
			Apply: func(ks []*trace.Kernel, rng *rand.Rand) bool {
				k := ks[rng.Intn(len(ks))]
				k.ThreadsPerCTA = 65 * isa.WarpSize // 65 warps: one more than an Ampere SM holds
				return true
			},
		},
		{
			// One warp of a multi-warp CTA lost a BAR: its siblings arrive
			// at the barrier and wait forever. Static checks cannot see
			// this; the watchdog must.
			Name:   "drop-barrier",
			Expect: ExpectRuntime,
			Apply: func(ks []*trace.Kernel, rng *rand.Rand) bool {
				w := pickWarpInMultiWarpCTA(ks, rng, func(w *trace.Warp) bool {
					for i := range w.Insts {
						if w.Insts[i].Op == isa.OpBAR {
							return true
						}
					}
					return false
				})
				if w == nil {
					return false
				}
				for i := range w.Insts {
					if w.Insts[i].Op == isa.OpBAR {
						w.Insts = append(w.Insts[:i], w.Insts[i+1:]...)
						break
					}
				}
				return true
			},
		},
		{
			// A source-register dependence on a register no prior
			// instruction wrote. The scoreboard only tracks in-flight
			// writes, so a dangling dependence resolves immediately — the
			// simulator must tolerate it.
			Name:   "dangling-dep",
			Expect: ExpectTolerated,
			Apply: func(ks []*trace.Kernel, rng *rand.Rand) bool {
				in := pickInst(ks, rng, func(in *trace.Inst) bool {
					return in.Op != isa.OpEXIT && in.Op != isa.OpBAR
				})
				if in == nil {
					return false
				}
				in.SrcA = isa.Reg(250) // far above any builder-allocated register
				return true
			},
		},
		{
			// Shared-memory oversubscription: the CTA fits a whole SM but
			// not half of one. Whole-SM policies run it; intra-SM split
			// policies can never place it and must report deadlock rather
			// than spin.
			Name:   "oversubscribe",
			Expect: ExpectIntraSM,
			Apply: func(ks []*trace.Kernel, rng *rand.Rand) bool {
				k := ks[rng.Intn(len(ks))]
				k.SharedMem = 48 << 10 // 48 KB of the 64 KB SM: > half, ≤ whole
				return true
			},
		},
	}
}

// ByName returns the catalog fault with the given name, or nil.
func ByName(name string) *Fault {
	for _, f := range Catalog() {
		if f.Name == name {
			ff := f
			return &ff
		}
	}
	return nil
}

// ConfigFault is one GPU-configuration perturbation that config.Validate
// (and therefore gpu.New) must reject.
type ConfigFault struct {
	Name  string
	Apply func(*config.GPU)
}

// ConfigCatalog returns the config-fault catalog; every entry must be
// rejected by (*config.GPU).Validate.
func ConfigCatalog() []ConfigFault {
	return []ConfigFault{
		{Name: "zero-sms", Apply: func(g *config.GPU) { g.NumSMs = 0 }},
		{Name: "bad-l2-banks", Apply: func(g *config.GPU) { g.L2Banks = 3 }},
		{Name: "negative-bandwidth", Apply: func(g *config.GPU) { g.MemBandwidthGBps = -1 }},
		{Name: "warps-not-multiple", Apply: func(g *config.GPU) { g.MaxWarpsPerSM = 63 }},
		{Name: "bad-sector", Apply: func(g *config.GPU) { g.SectorSize = 3 }},
	}
}

// CloneKernels deep-copies kernels (CTAs, warps, instructions, and
// per-lane address lists) so faults can be applied without disturbing the
// caller's traces.
func CloneKernels(kernels []*trace.Kernel) []*trace.Kernel {
	out := make([]*trace.Kernel, len(kernels))
	for i, k := range kernels {
		kk := *k
		kk.CTAs = make([]trace.CTA, len(k.CTAs))
		for c := range k.CTAs {
			cta := k.CTAs[c]
			warps := make([]trace.Warp, len(cta.Warps))
			for w := range cta.Warps {
				warp := cta.Warps[w]
				insts := make([]trace.Inst, len(warp.Insts))
				copy(insts, warp.Insts)
				for l := range insts {
					if len(insts[l].Addrs) > 0 {
						addrs := make([]uint64, len(insts[l].Addrs))
						copy(addrs, insts[l].Addrs)
						insts[l].Addrs = addrs
					}
				}
				warp.Insts = insts
				warps[w] = warp
			}
			cta.Warps = warps
			kk.CTAs[c] = cta
		}
		out[i] = &kk
	}
	return out
}

// pickWarp selects a uniformly random warp satisfying ok, or nil.
func pickWarp(ks []*trace.Kernel, rng *rand.Rand, ok func(*trace.Warp) bool) *trace.Warp {
	var candidates []*trace.Warp
	for _, k := range ks {
		for c := range k.CTAs {
			for w := range k.CTAs[c].Warps {
				if ok(&k.CTAs[c].Warps[w]) {
					candidates = append(candidates, &k.CTAs[c].Warps[w])
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[rng.Intn(len(candidates))]
}

// pickWarpInMultiWarpCTA is pickWarp restricted to CTAs with ≥ 2 warps
// (so a dropped barrier actually strands the siblings).
func pickWarpInMultiWarpCTA(ks []*trace.Kernel, rng *rand.Rand, ok func(*trace.Warp) bool) *trace.Warp {
	var candidates []*trace.Warp
	for _, k := range ks {
		for c := range k.CTAs {
			if len(k.CTAs[c].Warps) < 2 {
				continue
			}
			for w := range k.CTAs[c].Warps {
				if ok(&k.CTAs[c].Warps[w]) {
					candidates = append(candidates, &k.CTAs[c].Warps[w])
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[rng.Intn(len(candidates))]
}

// pickInst selects a uniformly random instruction satisfying ok, or nil.
func pickInst(ks []*trace.Kernel, rng *rand.Rand, ok func(*trace.Inst) bool) *trace.Inst {
	var candidates []*trace.Inst
	for _, k := range ks {
		for c := range k.CTAs {
			for w := range k.CTAs[c].Warps {
				insts := k.CTAs[c].Warps[w].Insts
				for l := range insts {
					if ok(&insts[l]) {
						candidates = append(candidates, &insts[l])
					}
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[rng.Intn(len(candidates))]
}
