package inject_test

import (
	"math/rand"
	"reflect"
	"testing"

	"crisp/internal/config"
	"crisp/internal/gpu"
	"crisp/internal/isa"
	"crisp/internal/partition"
	"crisp/internal/robust"
	"crisp/internal/robust/inject"
	"crisp/internal/trace"
)

// workload builds a small two-kernel compute stream exercising every
// feature the fault catalog perturbs: multi-warp CTAs, barriers, global
// loads with per-lane addresses, and plain ALU work.
func workload() []*trace.Kernel {
	var kernels []*trace.Kernel
	for ki := 0; ki < 2; ki++ {
		b := trace.NewBuilder("k", trace.KindCompute, 7, 2*isa.WarpSize, 16, 0)
		for c := 0; c < 4; c++ {
			b.BeginCTA()
			for w := 0; w < 2; w++ {
				b.BeginWarp()
				r := b.NewReg()
				b.ALU(isa.OpIADD, r, trace.FullMask)
				addrs := make([]uint64, isa.WarpSize)
				for l := range addrs {
					addrs[l] = uint64(ki<<20 | c<<12 | w<<8 | l*4)
				}
				b.Mem(isa.OpLDG, b.NewReg(), trace.FullMask, addrs, trace.ClassCompute)
				b.Barrier()
				b.ALU(isa.OpFMUL, b.NewReg(), trace.FullMask, r)
			}
		}
		kernels = append(kernels, b.Finish())
	}
	return kernels
}

func validateAll(ks []*trace.Kernel) error {
	for _, k := range ks {
		if err := k.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// runFaulted pushes the faulted kernels through a real GPU under the
// given policy builder (nil = serial) and returns the run error.
func runFaulted(t *testing.T, ks []*trace.Kernel, intraSM bool) error {
	t.Helper()
	cfg := config.JetsonOrin()
	cfg.NumSMs = 2
	g, err := gpu.New(cfg)
	if err != nil {
		t.Fatalf("gpu.New: %v", err)
	}
	g.WatchdogWindow = 1 << 16 // keep runtime faults fast
	if err := g.AddStream(gpu.StreamDef{ID: 7, Task: 1, Label: "faulted", Kernels: ks}); err != nil {
		return err
	}
	if intraSM {
		g.SetPolicy(partition.NewFGEven(g))
	}
	_, err = g.Run()
	return err
}

func TestCloneKernelsIsolation(t *testing.T) {
	orig := workload()
	pristine := inject.CloneKernels(orig)
	clone := inject.CloneKernels(orig)

	rng := rand.New(rand.NewSource(1))
	for _, f := range inject.Catalog() {
		f.Apply(clone, rng)
	}
	if !reflect.DeepEqual(orig, pristine) {
		t.Fatal("faulting a clone mutated the original kernels")
	}
}

func TestCatalogDeterminism(t *testing.T) {
	for _, f := range inject.Catalog() {
		a := inject.CloneKernels(workload())
		b := inject.CloneKernels(workload())
		okA := f.Apply(a, rand.New(rand.NewSource(42)))
		okB := f.Apply(b, rand.New(rand.NewSource(42)))
		if okA != okB {
			t.Fatalf("%s: applicability differs across identical seeds", f.Name)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different mutations", f.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if f := inject.ByName("drop-barrier"); f == nil || f.Expect != inject.ExpectRuntime {
		t.Fatalf("ByName(drop-barrier) = %+v", f)
	}
	if f := inject.ByName("no-such-fault"); f != nil {
		t.Fatalf("ByName(no-such-fault) = %+v, want nil", f)
	}
}

// TestFaultContainment is the harness's core claim: every catalog fault is
// caught at (exactly) its expected layer and never escalates to a hang or
// panic.
func TestFaultContainment(t *testing.T) {
	for _, f := range inject.Catalog() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			ks := inject.CloneKernels(workload())
			if !f.Apply(ks, rand.New(rand.NewSource(3))) {
				t.Fatalf("%s: fault not applicable to the test workload", f.Name)
			}
			switch f.Expect {
			case inject.ExpectValidation:
				if err := validateAll(ks); err == nil {
					t.Fatal("Validate accepted the faulted trace")
				}
				err := runFaulted(t, ks, false)
				se, ok := robust.AsSimError(err)
				if !ok || se.Kind != robust.KindValidation {
					t.Fatalf("AddStream error = %v, want validation SimError", err)
				}
			case inject.ExpectAddStream:
				if err := validateAll(ks); err != nil {
					t.Fatalf("fault should pass Validate, got %v", err)
				}
				err := runFaulted(t, ks, false)
				se, ok := robust.AsSimError(err)
				if !ok || se.Kind != robust.KindDeadlock {
					t.Fatalf("error = %v, want static deadlock SimError", err)
				}
				if se.Dump == nil {
					t.Fatal("static deadlock SimError carries no crash dump")
				}
			case inject.ExpectRuntime:
				err := runFaulted(t, ks, false)
				se, ok := robust.AsSimError(err)
				if !ok || se.Kind != robust.KindWatchdog {
					t.Fatalf("error = %v, want watchdog SimError", err)
				}
				if se.Dump == nil || len(se.Dump.SMs) == 0 {
					t.Fatal("watchdog SimError lacks a populated crash dump")
				}
			case inject.ExpectIntraSM:
				if err := runFaulted(t, ks, false); err != nil {
					t.Fatalf("whole-SM run failed: %v", err)
				}
				err := runFaulted(t, ks, true)
				se, ok := robust.AsSimError(err)
				if !ok || se.Kind != robust.KindDeadlock {
					t.Fatalf("intra-SM error = %v, want deadlock SimError", err)
				}
			case inject.ExpectTolerated:
				if err := runFaulted(t, ks, false); err != nil {
					t.Fatalf("tolerated fault failed the run: %v", err)
				}
			}
		})
	}
}

func TestConfigCatalogRejected(t *testing.T) {
	for _, cf := range inject.ConfigCatalog() {
		cf := cf
		t.Run(cf.Name, func(t *testing.T) {
			cfg := config.JetsonOrin()
			cf.Apply(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted the faulted config")
			}
			if _, err := gpu.New(cfg); err == nil {
				t.Fatal("gpu.New accepted the faulted config")
			}
		})
	}
}
