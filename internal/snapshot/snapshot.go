// Package snapshot defines CRISP's checkpoint/restore layer: a versioned,
// self-describing serialization of the complete simulator state — per-SM
// warp/CTA/scoreboard state, cache arrays and in-flight MSHR fills,
// stream/kernel/CTA progress, partition-policy state, and the
// stall-attribution counters — plus the determinism auditor built on it
// (rolling FNV digests of architectural state with first-divergence
// reporting).
//
// The package is a leaf: it imports only config and robust, so every
// simulator layer (mem, sm, gpu, partition, core) can implement
// Capture/Restore methods against these schema structs without import
// cycles.
//
// Two invariants make snapshots reproducible across processes:
//
//   - The schema is map-free. Everything that lives in a Go map inside
//     the simulator is serialized as a slice sorted by its key, so the
//     serialized form of a given simulator state is identical no matter
//     which process produced it.
//   - Architectural state (ArchState) is separated from observability
//     state (ObsState). The digest covers only ArchState, and it is
//     computed with the canonical field-by-field encoder in digest.go —
//     never from a self-describing serialization format, whose bytes can
//     depend on process encode history — so enabling tracing, metrics, or
//     checkpointing itself never perturbs a digest: any digest mismatch
//     is a real simulation divergence.
package snapshot

import (
	"encoding/json"

	"crisp/internal/config"
)

// FormatVersion is the snapshot format version. Loading a snapshot with a
// different version fails with a structured SimError: the format carries
// raw simulator internals, so cross-version restore is never attempted.
const FormatVersion = 1

// Magic identifies a CRISP snapshot file; it leads the JSON header line.
const Magic = "crispsnap"

// Envelope is the complete content of one snapshot file.
type Envelope struct {
	// Version is the format version (FormatVersion at write time).
	Version int
	// Spec describes how to rebuild the Job this state belongs to.
	Spec Spec
	// State is the captured simulator state.
	State GPUState
}

// Spec records how the snapshotted job was constructed, so a resume can
// rebuild the identical workload (traces are regenerated, not stored: the
// generators are deterministic, and a frame's traces dwarf the machine
// state).
type Spec struct {
	GPU     config.GPU
	Scene   string // rendering workload name ("" = none)
	Compute string // compute workload name ("" = none)
	Policy  string // core.PolicyKind
	// Mix is the canonical JSON of a scenario.MixSpec for N-tenant mix
	// jobs (nil for plain pairs; Scene/Compute are empty when set). The
	// workloads are named inside the mix, so a mix spec is as
	// self-describing as a pair spec.
	Mix []byte `json:",omitempty"`
	// RenderOptions is the JSON-marshaled render.Options used for the
	// graphics frame (nil when the job has no graphics work).
	RenderOptions  []byte
	GraphicsWindow int
	GraphicsFrames int
	LRRScheduler   bool
	// Observability cadences, reproduced on resume so a resumed run's
	// sampling boundaries line up with the uninterrupted run's.
	TimelineInterval int64
	MetricsInterval  int64
	DigestEvery      int64
	// Complete reports whether the spec fully describes the job. Jobs
	// built from in-memory traces or with extra compute workloads are
	// snapshotted (for postmortems) but cannot be resumed from the spec.
	Complete bool
}

// GPUState is the full simulator state, split into the digested
// architectural part and the excluded observability part.
type GPUState struct {
	Arch ArchState
	Obs  ObsState
}

// ArchState is everything that determines future simulated behavior. The
// determinism digest is the canonical FNV-1a hash computed by ArchDigest.
type ArchState struct {
	Cycle       int64
	TotalIssued int64
	MaxTask     int

	// PolicyName names the installed partition policy; PolicyBlob is the
	// policy's own serialized dynamic state (nil for stateless policies).
	PolicyName string
	PolicyBlob []byte

	Streams []StreamState // in AddStream order
	Running []LaunchState // in launch order (placement priority order)
	Kernels []KernelStatState

	// InstsBySMTask mirrors the per-SM per-task instruction counters the
	// warped-slicer samples.
	InstsBySMTask [][]int64

	Cores []CoreState // by SM id
	Mem   MemState
}

// ObsState is loop bookkeeping and metrics-sampling state: it must survive
// a resume so cadences stay aligned, but it never feeds the digest.
type ObsState struct {
	Loop LoopState
	// MPrev/MPrevCycle are the metrics series' previous cumulative
	// counter snapshot (per task, dense by task id).
	MPrev      []TaskSnapState
	MPrevCycle int64
}

// LoopState is the run loop's cursor state at the snapshot boundary.
type LoopState struct {
	LastTick       int64 // last policy-tick cycle
	NextSample     int64 // next timeline sample cycle
	NextMetrics    int64 // next metrics sample cycle
	NextCheckpoint int64 // next checkpoint cycle
	NextDigest     int64 // next digest cycle
	LastIssued     int64 // watchdog: totalIssued at last progress observation
	LastProgress   int64 // watchdog: cycle of last observed issue
	Iter           uint64
}

// TaskSnapState mirrors gpu's cumulative per-task metrics snapshot.
type TaskSnapState struct {
	WarpInsts  int64
	L1A, L1M   int64
	L2A, L2M   int64
	DRAMBytes  int64
	HasStreams bool
}

// StreamState is one stream's progress and statistics.
type StreamState struct {
	ID         int
	NextKernel int // index of the next kernel to launch
	Active     bool
	Started    bool
	StartCycle int64
	Stat       StreamCounters
}

// StreamCounters mirrors stats.Stream's counter fields — except the
// memory-system mirrors (L1/L2/DRAM), which are folded into stream stats
// only at run end (or failure) from the memory system's own counters.
// Those live in MemState; capturing the mirrors too would make a snapshot
// taken after a failure fold differ from the same machine state mid-run.
type StreamCounters struct {
	Cycles      int64
	WarpInsts   int64
	ThreadInsts int64
	TexAccesses int64

	KernelsLaunched int
	CTAsLaunched    int

	Stalls []int64 // by obs.StallCause
}

// LaunchState is one in-flight kernel launch.
type LaunchState struct {
	StreamID  int
	KernelIdx int // index into the stream's kernel list
	Task      int
	NextCTA   int
	DoneCTAs  int
	Started   int64
	LastDone  int64
}

// KernelStatState is one completed kernel launch's timing record.
type KernelStatState struct {
	Name     string
	Stream   int
	Task     int
	Launched int64
	Done     int64
	CTAs     int
}

// CoreState is one SM's runtime state. Warp and CTA identities are
// snapshot-local refs: warps are numbered in (scheduler, slot) order and
// CTAs in first-reference order, so capture is deterministic.
type CoreState struct {
	ID         int
	ArrivalSeq int64
	SchedSlots int64
	EmptySlots int64
	// WakeAt is the earliest cycle the core could do useful work, as
	// reported by its last Step. The event-driven engine sleeps the core
	// until then; capturing it keeps a resume's sleep windows (and the
	// digest) bit-identical to the uninterrupted run.
	WakeAt int64
	CTAs   []CTAState
	Scheds []SchedState
}

// CTAState is one resident CTA.
type CTAState struct {
	Ref        int // snapshot-local id warps use to reference their CTA
	StreamID   int
	KernelIdx  int // index into the stream's kernel list
	CTAIdx     int
	Task       int
	WarpsLeft  int
	BarArrived int
	BarWaiting []int // warp refs, in arrival order at the barrier
}

// SchedState is one warp scheduler.
type SchedState struct {
	LastWarp int // warp ref of the GTO "last issued" warp; -1 = none
	RR       int // round-robin cursor (SchedLRR)
	UnitFree []int64
	Warps    []WarpState // in slice (arrival) order
}

// WarpState is one resident warp. Scoreboard state is sparse: only
// registers whose pending write resolves after the snapshot cycle are
// recorded — entries already in the past can never bind a future issue.
type WarpState struct {
	Ref          int
	CTA          int // CTA ref
	WarpIdx      int // index within the CTA's warp list (selects the trace)
	PC           int
	BlockedUntil int64
	Arrival      int64
	PendingRegs  []RegState
}

// RegState is one pending scoreboard entry.
type RegState struct {
	Reg     int
	Ready   int64
	FromMem bool
}

// MemState is the whole memory hierarchy.
type MemState struct {
	L1           []CacheState         // per SM
	L1Pending    []PendingFills       // per SM, in-flight MSHR fills
	L2           []CacheState         // per bank
	L2Pending    []PendingFills       // per bank
	L2NextFree   []int64              // per bank single-server queue
	DRAMNextFree []int64              // per channel
	Counters     []StreamCounterState // sorted by stream id
}

// CacheState stores only the valid lines of one cache, by tag-array index.
type CacheState struct {
	Lines []LineState
}

// LineState is one valid cache line.
type LineState struct {
	Idx     int // set*assoc + way
	Tag     uint64
	Dirty   bool
	LastUse int64
	Class   uint8
	Stream  int
	Sectors uint32
}

// PendingFills is one MSHR merge map, sorted by granule.
type PendingFills struct {
	Fills []Fill
}

// Fill is one in-flight fill: the granule (line or sector address) and the
// cycle its data arrives.
type Fill struct {
	Granule uint64
	Ready   int64
}

// StreamCounterState is one stream's memory-system counter block.
type StreamCounterState struct {
	Stream     int
	L1Accesses int64
	L1Misses   int64
	L2Accesses int64
	L2Misses   int64
	DRAMReadB  int64
	DRAMWriteB int64
}

// UMONState is one utility monitor's state (TAP), with the shadow-tag
// stacks sorted by sampled-set key.
type UMONState struct {
	WayHits  []int64
	Accesses int64
	Misses   int64
	Stacks   []UMONStack
}

// UMONStack is one sampled set's LRU stack, MRU first.
type UMONStack struct {
	Key  uint64
	Tags []uint64
}

// DigestEntry is one sampled architectural digest.
type DigestEntry struct {
	Cycle  int64
	Digest uint64
}

// FirstDivergence compares two digest series over their overlapping cycle
// range (a resumed run only has entries after its resume point) and
// returns the first cycle at which they disagree — either differing
// digests at the same cycle, or misaligned sample cycles. ok=false means
// the series are consistent.
func FirstDivergence(a, b []DigestEntry) (cycle int64, ok bool) {
	if len(a) == 0 || len(b) == 0 {
		return 0, false
	}
	start := a[0].Cycle
	if b[0].Cycle > start {
		start = b[0].Cycle
	}
	i, j := 0, 0
	for i < len(a) && a[i].Cycle < start {
		i++
	}
	for j < len(b) && b[j].Cycle < start {
		j++
	}
	for i < len(a) && j < len(b) {
		if a[i].Cycle != b[j].Cycle {
			c := a[i].Cycle
			if b[j].Cycle < c {
				c = b[j].Cycle
			}
			return c, true
		}
		if a[i].Digest != b[j].Digest {
			return a[i].Cycle, true
		}
		i++
		j++
	}
	return 0, false
}

// MarshalSorted JSON-encodes v — a convenience for policy state blobs,
// which use JSON (human-inspectable in the file header era of debugging)
// with explicitly sorted slices for the same determinism guarantee.
func MarshalSorted(v any) ([]byte, error) { return json.Marshal(v) }
