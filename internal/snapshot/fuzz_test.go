package snapshot

import (
	"bytes"
	"testing"

	"crisp/internal/robust"
)

// FuzzSnapshotDecode drives Decode with arbitrary bytes. The contract under
// test is the robustness guarantee of the format: any input — truncated,
// bit-flipped, hostile header fields, garbage — either decodes or fails with
// a structured KindSnapshot SimError. A panic, or any other error type,
// fails the fuzz run.
func FuzzSnapshotDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleEnvelope(4242)); err != nil {
		f.Fatalf("Encode seed: %v", err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:bytes.IndexByte(good, '\n')+1])
	f.Add([]byte(`{"magic":"crispsnap","version":1,"body_len":-5}` + "\n"))
	f.Add([]byte(`{"magic":"crispsnap","version":1,"body_len":4294967296,"body_fnv":0}` + "\n"))
	f.Add([]byte("not a snapshot at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(bytes.NewReader(data))
		if err == nil {
			if env == nil {
				t.Fatalf("Decode returned nil envelope without error")
			}
			return
		}
		if se, ok := robust.AsSimError(err); !ok || se.Kind != robust.KindSnapshot {
			t.Fatalf("Decode error is not a snapshot SimError: %v", err)
		}
	})
}
