package snapshot

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func sampleArch() *ArchState {
	return &ArchState{
		Cycle:       8113,
		TotalIssued: 123456,
		MaxTask:     1,
		PolicyName:  "EVEN",
		PolicyBlob:  []byte{1, 2, 3},
		Streams: []StreamState{
			{ID: 0, NextKernel: 2, Active: true, Started: true, StartCycle: 17,
				Stat: StreamCounters{Cycles: 100, WarpInsts: 200, ThreadInsts: 6400,
					TexAccesses: 3, KernelsLaunched: 2, CTAsLaunched: 4, Stalls: []int64{1, 2, 3, 0, 0}}},
			{ID: 1 << 20, NextKernel: 1, Active: true, StartCycle: 0,
				Stat: StreamCounters{Cycles: 90, WarpInsts: 150, Stalls: []int64{0, 0, 0, 0, 0}}},
		},
		Running:       []LaunchState{{StreamID: 0, KernelIdx: 1, Task: 0, NextCTA: 3, DoneCTAs: 1, Started: 40, LastDone: 80}},
		Kernels:       []KernelStatState{{Name: "k0", Stream: 0, Task: 0, Launched: 17, Done: 39, CTAs: 2}},
		InstsBySMTask: [][]int64{{10, 20}, {30, 40}},
		Cores: []CoreState{{
			ID: 0, ArrivalSeq: 9, SchedSlots: 400, EmptySlots: 13,
			CTAs: []CTAState{{Ref: 0, StreamID: 0, KernelIdx: 1, CTAIdx: 2, Task: 0,
				WarpsLeft: 3, BarArrived: 1, BarWaiting: []int{0}}},
			Scheds: []SchedState{{LastWarp: 0, RR: 1, UnitFree: []int64{100, 101},
				Warps: []WarpState{{Ref: 0, CTA: 0, WarpIdx: 0, PC: 5, BlockedUntil: 110,
					Arrival: 3, PendingRegs: []RegState{{Reg: 7, Ready: 120, FromMem: true}}}}}},
		}},
		Mem: MemState{
			L1:           []CacheState{{Lines: []LineState{{Idx: 0, Tag: 0xabc, Dirty: true, LastUse: 99, Class: 2, Stream: 0, Sectors: 0xF}}}},
			L1Pending:    []PendingFills{{Fills: []Fill{{Granule: 0x1000, Ready: 130}}}},
			L2:           []CacheState{{}},
			L2Pending:    []PendingFills{{}},
			L2NextFree:   []int64{105},
			DRAMNextFree: []int64{106, 107},
			Counters:     []StreamCounterState{{Stream: 0, L1Accesses: 345, L1Misses: 203, L2Accesses: 203, L2Misses: 67, DRAMReadB: 8576}},
		},
	}
}

// TestArchDigestHistoryIndependent pins the property the original
// gob-based digest silently violated: the digest of a given state must
// not depend on what else the process has serialized. gob's wire format
// embeds process-globally allocated type ids, so a process that had
// gob-encoded other types (a checkpoint envelope, a result summary)
// before digesting produced different digest bytes for the same machine
// state — exactly the cross-process comparison the determinism auditor
// exists to make.
func TestArchDigestHistoryIndependent(t *testing.T) {
	a := sampleArch()
	before, err := ArchDigest(a)
	if err != nil {
		t.Fatalf("ArchDigest: %v", err)
	}

	// Pollute the process's gob type registry the way a checkpoint write
	// or an unrelated serialization would.
	type noise struct {
		A int
		B string
		C []float64
		D map[string]int
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&noise{A: 1, B: "x", C: []float64{1.5}, D: map[string]int{"k": 1}}); err != nil {
		t.Fatalf("noise encode: %v", err)
	}
	if err := gob.NewEncoder(&buf).Encode(&Envelope{Version: FormatVersion, State: GPUState{Arch: *sampleArch()}}); err != nil {
		t.Fatalf("envelope encode: %v", err)
	}

	after, err := ArchDigest(a)
	if err != nil {
		t.Fatalf("ArchDigest after gob noise: %v", err)
	}
	if before != after {
		t.Fatalf("ArchDigest changed after unrelated gob encodes: %016x -> %016x; the digest must be a pure function of the state", before, after)
	}
}

// TestArchDigestSensitivity: the canonical encoder must still see every
// field — a digest that never changes is as useless as one that changes
// for the wrong reasons. Flip a scattering of fields across the schema
// and assert each flip moves the digest.
func TestArchDigestSensitivity(t *testing.T) {
	base, err := ArchDigest(sampleArch())
	if err != nil {
		t.Fatalf("ArchDigest: %v", err)
	}
	mutations := map[string]func(a *ArchState){
		"cycle":         func(a *ArchState) { a.Cycle++ },
		"policy name":   func(a *ArchState) { a.PolicyName = "MPS" },
		"policy blob":   func(a *ArchState) { a.PolicyBlob[0] ^= 0xFF },
		"stream stat":   func(a *ArchState) { a.Streams[0].Stat.WarpInsts++ },
		"stall vector":  func(a *ArchState) { a.Streams[1].Stat.Stalls[2]++ },
		"launch cursor": func(a *ArchState) { a.Running[0].NextCTA++ },
		"kernel record": func(a *ArchState) { a.Kernels[0].Done++ },
		"warp pc":       func(a *ArchState) { a.Cores[0].Scheds[0].Warps[0].PC++ },
		"scoreboard":    func(a *ArchState) { a.Cores[0].Scheds[0].Warps[0].PendingRegs[0].FromMem = false },
		"cache line":    func(a *ArchState) { a.Mem.L1[0].Lines[0].Tag ^= 1 },
		"mshr fill":     func(a *ArchState) { a.Mem.L1Pending[0].Fills[0].Ready++ },
		"mem counter":   func(a *ArchState) { a.Mem.Counters[0].DRAMReadB++ },
	}
	for name, mutate := range mutations {
		a := sampleArch()
		mutate(a)
		d, err := ArchDigest(a)
		if err != nil {
			t.Fatalf("%s: ArchDigest: %v", name, err)
		}
		if d == base {
			t.Errorf("%s: mutation did not change the digest; the canonical encoder is skipping this field", name)
		}
	}
}

// TestHasherFraming: length prefixes must keep adjacent variable-length
// fields from colliding by concatenation.
func TestHasherFraming(t *testing.T) {
	h1 := NewHasher()
	h1.PutStr("ab")
	h1.PutStr("c")
	h2 := NewHasher()
	h2.PutStr("a")
	h2.PutStr("bc")
	if h1.Sum64() == h2.Sum64() {
		t.Error(`("ab","c") and ("a","bc") hash identically; string framing is broken`)
	}
	h3 := NewHasher()
	h3.PutI64s([]int64{1, 2})
	h3.PutI64s(nil)
	h4 := NewHasher()
	h4.PutI64s([]int64{1})
	h4.PutI64s([]int64{2})
	if h3.Sum64() == h4.Sum64() {
		t.Error("([1,2],[]) and ([1],[2]) hash identically; slice framing is broken")
	}
}
