package snapshot

import (
	"encoding/binary"
	"hash/fnv"
)

// This file implements the canonical digest encoding. Digests originally
// hashed the gob encoding of the state, but gob's wire format embeds
// type ids drawn from a process-global allocator: the bytes it emits for
// identical values depend on every type the process happened to encode or
// reflect earlier. A worker that wrote a checkpoint (gob-encoding the
// envelope tree) before digesting produced different digest bytes than a
// worker that digested first, so cross-process digest comparison — the
// whole point of the determinism auditor — silently broke. The canonical
// encoder writes each field explicitly in declaration order, fixed-width
// little-endian with length-prefixed strings and slices, so the digest is
// a pure function of the data.

// Hasher accumulates a canonical FNV-1a/64 digest. Values must be fed in
// a fixed order; variable-length data (strings, byte slices, repeated
// groups) must be preceded by its length so distinct structures can never
// collide by concatenation.
type Hasher struct {
	sum uint64
}

// NewHasher returns a Hasher primed with the FNV-1a offset basis.
func NewHasher() *Hasher {
	h := fnv.New64a()
	return &Hasher{sum: h.Sum64()}
}

const fnvPrime = 1099511628211

func (h *Hasher) write(b []byte) {
	s := h.sum
	for _, x := range b {
		s ^= uint64(x)
		s *= fnvPrime
	}
	h.sum = s
}

// PutU64 hashes one fixed-width unsigned value.
func (h *Hasher) PutU64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.write(b[:])
}

// PutI64 hashes one fixed-width signed value.
func (h *Hasher) PutI64(v int64) { h.PutU64(uint64(v)) }

// PutInt hashes an int (widened to 64 bits so the digest is identical on
// 32- and 64-bit builds).
func (h *Hasher) PutInt(v int) { h.PutU64(uint64(int64(v))) }

// PutU32 hashes one 32-bit unsigned value (widened).
func (h *Hasher) PutU32(v uint32) { h.PutU64(uint64(v)) }

// PutU8 hashes one byte-sized value (widened).
func (h *Hasher) PutU8(v uint8) { h.PutU64(uint64(v)) }

// PutBool hashes a bool as one full-width word.
func (h *Hasher) PutBool(v bool) {
	if v {
		h.PutU64(1)
	} else {
		h.PutU64(0)
	}
}

// PutStr hashes a length-prefixed string.
func (h *Hasher) PutStr(s string) {
	h.PutU64(uint64(len(s)))
	h.write([]byte(s))
}

// PutBytes hashes a length-prefixed byte slice (nil and empty hash alike:
// both are zero-length).
func (h *Hasher) PutBytes(b []byte) {
	h.PutU64(uint64(len(b)))
	h.write(b)
}

// PutI64s hashes a length-prefixed []int64.
func (h *Hasher) PutI64s(vs []int64) {
	h.PutU64(uint64(len(vs)))
	for _, v := range vs {
		h.PutI64(v)
	}
}

// Sum64 returns the digest accumulated so far.
func (h *Hasher) Sum64() uint64 { return h.sum }

// ArchDigest is the determinism digest: a canonical FNV-1a hash over the
// architectural state, field by field in schema order. The encoding is a
// pure function of the state — two identical machine states digest
// identically in any process, in any binary, regardless of what else was
// serialized before — so any digest mismatch is a real simulation
// divergence.
func ArchDigest(a *ArchState) (uint64, error) {
	h := NewHasher()
	h.PutI64(a.Cycle)
	h.PutI64(a.TotalIssued)
	h.PutInt(a.MaxTask)
	h.PutStr(a.PolicyName)
	h.PutBytes(a.PolicyBlob)

	h.PutU64(uint64(len(a.Streams)))
	for i := range a.Streams {
		s := &a.Streams[i]
		h.PutInt(s.ID)
		h.PutInt(s.NextKernel)
		h.PutBool(s.Active)
		h.PutBool(s.Started)
		h.PutI64(s.StartCycle)
		h.PutI64(s.Stat.Cycles)
		h.PutI64(s.Stat.WarpInsts)
		h.PutI64(s.Stat.ThreadInsts)
		h.PutI64(s.Stat.TexAccesses)
		h.PutInt(s.Stat.KernelsLaunched)
		h.PutInt(s.Stat.CTAsLaunched)
		h.PutI64s(s.Stat.Stalls)
	}

	h.PutU64(uint64(len(a.Running)))
	for i := range a.Running {
		l := &a.Running[i]
		h.PutInt(l.StreamID)
		h.PutInt(l.KernelIdx)
		h.PutInt(l.Task)
		h.PutInt(l.NextCTA)
		h.PutInt(l.DoneCTAs)
		h.PutI64(l.Started)
		h.PutI64(l.LastDone)
	}

	h.PutU64(uint64(len(a.Kernels)))
	for i := range a.Kernels {
		k := &a.Kernels[i]
		h.PutStr(k.Name)
		h.PutInt(k.Stream)
		h.PutInt(k.Task)
		h.PutI64(k.Launched)
		h.PutI64(k.Done)
		h.PutInt(k.CTAs)
	}

	h.PutU64(uint64(len(a.InstsBySMTask)))
	for _, row := range a.InstsBySMTask {
		h.PutI64s(row)
	}

	h.PutU64(uint64(len(a.Cores)))
	for i := range a.Cores {
		hashCore(h, &a.Cores[i])
	}
	hashMem(h, &a.Mem)
	return h.Sum64(), nil
}

func hashCore(h *Hasher, c *CoreState) {
	h.PutInt(c.ID)
	h.PutI64(c.ArrivalSeq)
	h.PutI64(c.SchedSlots)
	h.PutI64(c.EmptySlots)
	h.PutI64(c.WakeAt)

	h.PutU64(uint64(len(c.CTAs)))
	for i := range c.CTAs {
		cta := &c.CTAs[i]
		h.PutInt(cta.Ref)
		h.PutInt(cta.StreamID)
		h.PutInt(cta.KernelIdx)
		h.PutInt(cta.CTAIdx)
		h.PutInt(cta.Task)
		h.PutInt(cta.WarpsLeft)
		h.PutInt(cta.BarArrived)
		h.PutU64(uint64(len(cta.BarWaiting)))
		for _, r := range cta.BarWaiting {
			h.PutInt(r)
		}
	}

	h.PutU64(uint64(len(c.Scheds)))
	for i := range c.Scheds {
		s := &c.Scheds[i]
		h.PutInt(s.LastWarp)
		h.PutInt(s.RR)
		h.PutI64s(s.UnitFree)
		h.PutU64(uint64(len(s.Warps)))
		for wi := range s.Warps {
			w := &s.Warps[wi]
			h.PutInt(w.Ref)
			h.PutInt(w.CTA)
			h.PutInt(w.WarpIdx)
			h.PutInt(w.PC)
			h.PutI64(w.BlockedUntil)
			h.PutI64(w.Arrival)
			h.PutU64(uint64(len(w.PendingRegs)))
			for ri := range w.PendingRegs {
				r := &w.PendingRegs[ri]
				h.PutInt(r.Reg)
				h.PutI64(r.Ready)
				h.PutBool(r.FromMem)
			}
		}
	}
}

func hashMem(h *Hasher, m *MemState) {
	hashCaches := func(cs []CacheState) {
		h.PutU64(uint64(len(cs)))
		for i := range cs {
			h.PutU64(uint64(len(cs[i].Lines)))
			for li := range cs[i].Lines {
				l := &cs[i].Lines[li]
				h.PutInt(l.Idx)
				h.PutU64(l.Tag)
				h.PutBool(l.Dirty)
				h.PutI64(l.LastUse)
				h.PutU8(l.Class)
				h.PutInt(l.Stream)
				h.PutU32(l.Sectors)
			}
		}
	}
	hashPending := func(ps []PendingFills) {
		h.PutU64(uint64(len(ps)))
		for i := range ps {
			h.PutU64(uint64(len(ps[i].Fills)))
			for _, f := range ps[i].Fills {
				h.PutU64(f.Granule)
				h.PutI64(f.Ready)
			}
		}
	}
	hashCaches(m.L1)
	hashPending(m.L1Pending)
	hashCaches(m.L2)
	hashPending(m.L2Pending)
	h.PutI64s(m.L2NextFree)
	h.PutI64s(m.DRAMNextFree)
	h.PutU64(uint64(len(m.Counters)))
	for i := range m.Counters {
		c := &m.Counters[i]
		h.PutInt(c.Stream)
		h.PutI64(c.L1Accesses)
		h.PutI64(c.L1Misses)
		h.PutI64(c.L2Accesses)
		h.PutI64(c.L2Misses)
		h.PutI64(c.DRAMReadB)
		h.PutI64(c.DRAMWriteB)
	}
}
