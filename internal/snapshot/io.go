package snapshot

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"crisp/internal/robust"
)

// Header is the first line of a snapshot file: plain JSON, so `head -1`
// identifies any snapshot without decoding the body. Field order is
// declaration order, which keeps Magic first in the serialized form.
type Header struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Cycle   int64  `json:"cycle"`
	Policy  string `json:"policy"`
	Scene   string `json:"scene,omitempty"`
	Compute string `json:"compute,omitempty"`
	// SpecDigest is the canonical job digest (Spec.JobDigest): `head -1`
	// tells which content-addressed result a snapshot belongs to.
	SpecDigest string `json:"spec_digest,omitempty"`
	// BodyLen and BodyFNV integrity-check the binary body that follows:
	// BodyLen bytes of gzip-compressed gob, hashed with FNV-1a-64.
	BodyLen int64  `json:"body_len"`
	BodyFNV uint64 `json:"body_fnv"`
}

// maxBodyLen caps the compressed body a decoder will read, and
// maxDecompressed caps what it will inflate — hostile headers and
// gzip bombs fail cleanly instead of exhausting memory.
const (
	maxBodyLen      = 1 << 31 // 2 GiB compressed
	maxDecompressed = 1 << 33 // 8 GiB inflated
)

func snapErr(msg string, cause error) error {
	return &robust.SimError{Kind: robust.KindSnapshot, Msg: msg, Err: cause}
}

// Encode writes env to w: one JSON header line, then the gzip-compressed
// gob body the header integrity-checks.
func Encode(w io.Writer, env *Envelope) error {
	var body bytes.Buffer
	// BestSpeed: checkpoints are written every few hundred thousand cycles
	// on the run's critical path, and gzip dominates the save cost. The
	// gob body is mostly small integers, which compress well at any level.
	zw, _ := gzip.NewWriterLevel(&body, gzip.BestSpeed)
	if err := gob.NewEncoder(zw).Encode(env); err != nil {
		return snapErr("encoding snapshot body", err)
	}
	if err := zw.Close(); err != nil {
		return snapErr("compressing snapshot body", err)
	}
	h := fnv.New64a()
	h.Write(body.Bytes())
	hdr := Header{
		Magic:      Magic,
		Version:    env.Version,
		Cycle:      env.State.Arch.Cycle,
		Policy:     env.Spec.Policy,
		Scene:      env.Spec.Scene,
		Compute:    env.Spec.Compute,
		SpecDigest: env.Spec.JobDigest(),
		BodyLen:    int64(body.Len()),
		BodyFNV:    h.Sum64(),
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return snapErr("encoding snapshot header", err)
	}
	hb = append(hb, '\n')
	if _, err := w.Write(hb); err != nil {
		return snapErr("writing snapshot header", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return snapErr("writing snapshot body", err)
	}
	return nil
}

// Decode reads a snapshot from r. Every failure mode — truncation,
// corruption, version mismatch, hostile length fields, even a panic inside
// the gob decoder — returns a KindSnapshot SimError; Decode never panics.
func Decode(r io.Reader) (env *Envelope, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			env = nil
			err = snapErr(fmt.Sprintf("panic decoding snapshot: %v", rec), nil)
		}
	}()
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, snapErr("reading snapshot header", err)
	}
	// Reject non-snapshot files before handing the line to the JSON
	// decoder: the magic field is serialized first by construction.
	if !strings.HasPrefix(line, `{"magic":"`+Magic+`"`) {
		return nil, snapErr("not a CRISP snapshot (bad magic)", nil)
	}
	var hdr Header
	if err := json.Unmarshal([]byte(line), &hdr); err != nil {
		return nil, snapErr("parsing snapshot header", err)
	}
	if hdr.Version != FormatVersion {
		return nil, snapErr(fmt.Sprintf("snapshot format version %d, this build reads version %d", hdr.Version, FormatVersion), nil)
	}
	if hdr.BodyLen < 0 || hdr.BodyLen > maxBodyLen {
		return nil, snapErr(fmt.Sprintf("snapshot body length %d out of range", hdr.BodyLen), nil)
	}
	body := make([]byte, hdr.BodyLen)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, snapErr("snapshot body truncated", err)
	}
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != hdr.BodyFNV {
		return nil, snapErr("snapshot body checksum mismatch (file corrupt)", nil)
	}
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		return nil, snapErr("snapshot body is not valid gzip", err)
	}
	defer zr.Close()
	e := new(Envelope)
	if err := gob.NewDecoder(io.LimitReader(zr, maxDecompressed)).Decode(e); err != nil {
		return nil, snapErr("decoding snapshot body", err)
	}
	if e.Version != FormatVersion {
		return nil, snapErr(fmt.Sprintf("snapshot envelope version %d disagrees with header", e.Version), nil)
	}
	return e, nil
}

// LoadFile reads and decodes the snapshot at path.
func LoadFile(path string) (*Envelope, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, snapErr("opening snapshot", err)
	}
	defer f.Close()
	return Decode(f)
}

// PeekHeader reads only the JSON header line of the snapshot at path —
// enough to learn its cycle and spec digest without decoding the body.
func PeekHeader(path string) (*Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, snapErr("opening snapshot", err)
	}
	defer f.Close()
	line, err := bufio.NewReader(f).ReadString('\n')
	if err != nil {
		return nil, snapErr("reading snapshot header", err)
	}
	if !strings.HasPrefix(line, `{"magic":"`+Magic+`"`) {
		return nil, snapErr("not a CRISP snapshot (bad magic)", nil)
	}
	var hdr Header
	if err := json.Unmarshal([]byte(line), &hdr); err != nil {
		return nil, snapErr("parsing snapshot header", err)
	}
	return &hdr, nil
}

// Ext is the snapshot file extension.
const Ext = ".crispsnap"

// fileName is the canonical checkpoint name: zero-padded so lexical order
// is cycle order.
func fileName(cycle int64) string {
	return fmt.Sprintf("ckpt-%016d%s", cycle, Ext)
}

// Store writes checkpoints into a directory with atomic replace and
// bounded retention.
type Store struct {
	// Dir is the checkpoint directory, created on first save.
	Dir string
	// Retain is the number of newest checkpoints to keep; <= 0 means
	// DefaultRetain. The final snapshot written on failure is exempt.
	Retain int
}

// DefaultRetain is the default number of periodic checkpoints kept.
const DefaultRetain = 3

// Save atomically writes env as the checkpoint for its cycle: the file is
// written to a temp name in the same directory and renamed into place, so
// a crash mid-write never leaves a partial file under a checkpoint name.
// After a successful write, checkpoints beyond the retention bound are
// pruned oldest-first. Returns the final path.
func (s *Store) Save(env *Envelope) (string, error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", snapErr("creating checkpoint directory", err)
	}
	final := filepath.Join(s.Dir, fileName(env.State.Arch.Cycle))
	if err := writeAtomic(final, env); err != nil {
		return "", err
	}
	s.prune()
	return final, nil
}

// SaveFinal writes the failure-time snapshot under a fixed name next to
// the crash dump; it is never pruned by retention.
func (s *Store) SaveFinal(env *Envelope) (string, error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", snapErr("creating checkpoint directory", err)
	}
	final := filepath.Join(s.Dir, "final"+Ext)
	if err := writeAtomic(final, env); err != nil {
		return "", err
	}
	return final, nil
}

func writeAtomic(final string, env *Envelope) error {
	dir := filepath.Dir(final)
	tmp, err := os.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return snapErr("creating checkpoint temp file", err)
	}
	tmpName := tmp.Name()
	if err := Encode(tmp, env); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	// fsync before the rename: the rename must never publish a checkpoint
	// name whose bytes are still only in the page cache.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return snapErr("syncing checkpoint temp file", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return snapErr("closing checkpoint temp file", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return snapErr("publishing checkpoint", err)
	}
	// fsync the directory so the rename itself survives a host crash: an
	// unsynced rename can be lost, leaving the previous (or no) entry.
	SyncDir(dir)
	return nil
}

// SyncDir fsyncs a directory, making recently renamed entries durable.
// Best effort: filesystems without directory fsync (or a racing removal)
// must not fail a write that already succeeded.
func SyncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// prune removes periodic checkpoints beyond the retention bound,
// oldest-first. Prune failures are ignored: retention is best-effort and
// must never fail a save that already succeeded.
func (s *Store) prune() {
	keep := s.Retain
	if keep <= 0 {
		keep = DefaultRetain
	}
	names := listCheckpoints(s.Dir)
	for _, n := range names[:max(0, len(names)-keep)] {
		os.Remove(filepath.Join(s.Dir, n))
	}
}

// listCheckpoints returns periodic checkpoint file names in dir, sorted
// ascending by cycle (lexical order by construction). final.crispsnap is
// excluded.
func listCheckpoints(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, Ext) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Latest returns the path of the newest snapshot in dir: the
// highest-cycle periodic checkpoint, or final.crispsnap when it is newer
// (a failed run's last state always post-dates its periodic checkpoints).
func Latest(dir string) (string, error) {
	names := listCheckpoints(dir)
	best := ""
	bestCycle := int64(-1)
	if len(names) > 0 {
		best = filepath.Join(dir, names[len(names)-1])
		fmt.Sscanf(names[len(names)-1], "ckpt-%d", &bestCycle)
	}
	finalPath := filepath.Join(dir, "final"+Ext)
	if env, err := LoadFile(finalPath); err == nil {
		if env.State.Arch.Cycle >= bestCycle {
			return finalPath, nil
		}
	}
	if best == "" {
		return "", snapErr(fmt.Sprintf("no snapshots in %s", dir), nil)
	}
	return best, nil
}

// Candidates returns every snapshot path in dir ordered newest-first by
// header cycle — the resume preference order. final.crispsnap participates
// like any periodic checkpoint (it is normally the newest). Files whose
// header cannot even be read sort last: they will fail a full load anyway,
// but a caller walking the list still visits them before giving up.
func Candidates(dir string) []string {
	names := listCheckpoints(dir)
	if _, err := os.Stat(filepath.Join(dir, "final"+Ext)); err == nil {
		names = append(names, "final"+Ext)
	}
	type cand struct {
		path  string
		cycle int64
	}
	cands := make([]cand, 0, len(names))
	for _, n := range names {
		p := filepath.Join(dir, n)
		c := cand{path: p, cycle: -1}
		if hdr, err := PeekHeader(p); err == nil {
			c.cycle = hdr.Cycle
		}
		cands = append(cands, c)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].cycle > cands[j].cycle })
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.path
	}
	return out
}

// NewestCycle peeks the header cycle of the newest snapshot candidate in
// dir without decoding the body — what a coordinator reports when a
// reassigned task resumes from a shipped checkpoint ("resuming from cycle
// N"). ok is false when dir holds no candidate with a readable header.
func NewestCycle(dir string) (cycle int64, ok bool) {
	for _, path := range Candidates(dir) {
		if hdr, err := PeekHeader(path); err == nil {
			return hdr.Cycle, true
		}
	}
	return 0, false
}

// LoadNewest loads the newest decodable snapshot in dir, falling back to
// progressively older checkpoints when the newest is corrupt or truncated
// — the supervised-retry recovery path. Each undecodable file is renamed
// aside to <name>.corrupt (so the next attempt does not re-try it) and
// reported in corrupt. When no snapshot in dir decodes, env is nil and err
// carries the last failure (KindSnapshot); the caller falls back to a
// fresh run.
func LoadNewest(dir string) (env *Envelope, corrupt []string, err error) {
	cands := Candidates(dir)
	if len(cands) == 0 {
		return nil, nil, snapErr(fmt.Sprintf("no snapshots in %s", dir), nil)
	}
	for _, path := range cands {
		env, lerr := LoadFile(path)
		if lerr == nil {
			return env, corrupt, nil
		}
		err = lerr
		if renameErr := os.Rename(path, path+".corrupt"); renameErr == nil {
			corrupt = append(corrupt, path)
		}
	}
	return nil, corrupt, err
}

// Resolve turns a -resume argument into a snapshot path: a file path is
// used as-is, a directory resolves to its latest snapshot.
func Resolve(arg string) (string, error) {
	info, err := os.Stat(arg)
	if err != nil {
		return "", snapErr("resolving snapshot path", err)
	}
	if info.IsDir() {
		return Latest(arg)
	}
	return arg, nil
}
