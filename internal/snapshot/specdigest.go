package snapshot

import (
	"fmt"
	"hash/fnv"

	"crisp/internal/config"
)

// JobDigest is the canonical content address of the simulation a Spec
// describes: two specs digest identically iff they produce bit-identical
// simulation results. It is the cache key of the batch service's
// content-addressed result store and the identity stamped into every
// snapshot file header, built from the same canonical config hash
// (config.Digest) in both places.
//
// Only result-determining fields participate: the GPU configuration (via
// config.Digest, which already excludes host-execution knobs), the
// workload names, the policy, the render options, and the structural run
// shape (graphics window/frames, scheduler variant). Observability
// cadences (timeline, metrics, digest sampling) are excluded — they never
// perturb architectural results, so runs differing only in instrumentation
// share one digest.
func (s *Spec) JobDigest() string {
	h := fnv.New64a()
	field := func(name, value string) {
		h.Write([]byte(name))
		h.Write([]byte{'='})
		h.Write([]byte(value))
		h.Write([]byte{0})
	}
	field("gpu", config.Digest(s.GPU))
	field("scene", s.Scene)
	field("compute", s.Compute)
	field("policy", s.Policy)
	field("render_options", string(s.RenderOptions))
	field("graphics_window", fmt.Sprint(s.GraphicsWindow))
	field("graphics_frames", fmt.Sprint(s.GraphicsFrames))
	field("lrr", fmt.Sprint(s.LRRScheduler))
	// Appended only when present so every pre-mix pair spec keeps its
	// original digest (the service's cache keys stay valid).
	if len(s.Mix) > 0 {
		field("mix", string(s.Mix))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
