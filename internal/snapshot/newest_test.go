package snapshot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCandidatesNewestFirst(t *testing.T) {
	dir := t.TempDir()
	st := &Store{Dir: dir}
	for _, c := range []int64{100, 300} {
		if _, err := st.Save(sampleEnvelope(c)); err != nil {
			t.Fatalf("save %d: %v", c, err)
		}
	}
	// A final snapshot that is OLDER than the newest periodic checkpoint:
	// Candidates must order by header cycle, not by name or kind.
	if _, err := st.SaveFinal(sampleEnvelope(200)); err != nil {
		t.Fatalf("save final: %v", err)
	}
	cands := Candidates(dir)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3: %v", len(cands), cands)
	}
	wantOrder := []int64{300, 200, 100}
	for i, p := range cands {
		hdr, err := PeekHeader(p)
		if err != nil {
			t.Fatalf("peek %s: %v", p, err)
		}
		if hdr.Cycle != wantOrder[i] {
			t.Fatalf("candidate %d = cycle %d, want %d (order %v)", i, hdr.Cycle, wantOrder[i], cands)
		}
	}
	if filepath.Base(cands[1]) != "final"+Ext {
		t.Fatalf("middle candidate = %s, want final%s", cands[1], Ext)
	}
}

func TestLoadNewestFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	st := &Store{Dir: dir}
	for _, c := range []int64{100, 200} {
		if _, err := st.Save(sampleEnvelope(c)); err != nil {
			t.Fatalf("save %d: %v", c, err)
		}
	}
	newest := filepath.Join(dir, fileName(200))
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	env, corrupt, err := LoadNewest(dir)
	if err != nil {
		t.Fatalf("LoadNewest: %v", err)
	}
	if env.State.Arch.Cycle != 100 {
		t.Fatalf("resumed from cycle %d, want fallback to 100", env.State.Arch.Cycle)
	}
	if len(corrupt) != 1 || corrupt[0] != newest {
		t.Fatalf("corrupt = %v, want [%s]", corrupt, newest)
	}
	if _, err := os.Stat(newest + ".corrupt"); err != nil {
		t.Fatalf("damaged file not renamed aside: %v", err)
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("damaged file still under its checkpoint name: %v", err)
	}
}

func TestLoadNewestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	st := &Store{Dir: dir}
	if _, err := st.Save(sampleEnvelope(100)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName(100))
	if err := os.WriteFile(path, []byte("not a snapshot\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	env, corrupt, err := LoadNewest(dir)
	if env != nil || err == nil {
		t.Fatalf("LoadNewest on all-corrupt dir: env=%v err=%v", env, err)
	}
	if len(corrupt) != 1 {
		t.Fatalf("corrupt = %v, want exactly the one damaged file", corrupt)
	}
	if !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("error should be a snapshot error: %v", err)
	}
}

func TestLoadNewestEmptyDir(t *testing.T) {
	if env, _, err := LoadNewest(t.TempDir()); env != nil || err == nil {
		t.Fatalf("LoadNewest on empty dir: env=%v err=%v", env, err)
	}
}
