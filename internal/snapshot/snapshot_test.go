package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"crisp/internal/config"
	"crisp/internal/robust"
)

// sampleEnvelope builds a small but fully populated envelope: every schema
// branch carries data so round-trip tests exercise the whole tree.
func sampleEnvelope(cycle int64) *Envelope {
	return &Envelope{
		Version: FormatVersion,
		Spec: Spec{
			GPU:         config.JetsonOrin(),
			Scene:       "SPL",
			Compute:     "VIO",
			Policy:      "EVEN",
			DigestEvery: 512,
			Complete:    true,
		},
		State: GPUState{
			Arch: ArchState{
				Cycle:       cycle,
				TotalIssued: 12345,
				MaxTask:     1,
				PolicyName:  "EVEN",
				Streams: []StreamState{{
					ID: 0, NextKernel: 2, Active: true, Started: true,
					Stat: StreamCounters{Cycles: cycle, WarpInsts: 99, Stalls: []int64{1, 2, 3}},
				}},
				Running:       []LaunchState{{StreamID: 0, KernelIdx: 1, NextCTA: 4, DoneCTAs: 2}},
				Kernels:       []KernelStatState{{Name: "k0", Stream: 0, Done: 7, CTAs: 3}},
				InstsBySMTask: [][]int64{{5, 6}, {7, 8}},
				Cores: []CoreState{{
					ID: 0, ArrivalSeq: 9, SchedSlots: 100, EmptySlots: 40,
					CTAs: []CTAState{{Ref: 0, KernelIdx: 1, CTAIdx: 2, WarpsLeft: 1, BarWaiting: []int{0}}},
					Scheds: []SchedState{{
						LastWarp: 0, UnitFree: []int64{10, 20},
						Warps: []WarpState{{Ref: 0, CTA: 0, WarpIdx: 3, PC: 42, BlockedUntil: 50,
							PendingRegs: []RegState{{Reg: 7, Ready: 60, FromMem: true}}}},
					}},
				}},
				Mem: MemState{
					L1:           []CacheState{{Lines: []LineState{{Idx: 1, Tag: 0xabc, Dirty: true, Sectors: 0xf}}}},
					L1Pending:    []PendingFills{{Fills: []Fill{{Granule: 0x100, Ready: 70}}}},
					L2:           []CacheState{{}},
					L2Pending:    []PendingFills{{}},
					L2NextFree:   []int64{5},
					DRAMNextFree: []int64{6},
					Counters:     []StreamCounterState{{Stream: 0, L1Accesses: 11, DRAMReadB: 256}},
				},
			},
			Obs: ObsState{
				Loop:  LoopState{NextCheckpoint: cycle + 100, NextDigest: cycle + 50, Iter: 77},
				MPrev: []TaskSnapState{{WarpInsts: 99, HasStreams: true}},
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	env := sampleEnvelope(1000)
	var buf bytes.Buffer
	if err := Encode(&buf, env); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Fatalf("round trip altered the envelope:\n got %+v\nwant %+v", got, env)
	}
	d1, err := ArchDigest(&env.State.Arch)
	if err != nil {
		t.Fatalf("ArchDigest: %v", err)
	}
	d2, err := ArchDigest(&got.State.Arch)
	if err != nil {
		t.Fatalf("ArchDigest(decoded): %v", err)
	}
	if d1 != d2 {
		t.Fatalf("digest changed across round trip: %#x != %#x", d1, d2)
	}
}

func TestArchDigestIsStateSensitive(t *testing.T) {
	a, b := sampleEnvelope(1000), sampleEnvelope(1000)
	b.State.Arch.Cores[0].Scheds[0].Warps[0].PC++
	da, _ := ArchDigest(&a.State.Arch)
	db, _ := ArchDigest(&b.State.Arch)
	if da == db {
		t.Fatalf("digests identical despite differing warp PC")
	}
	// Observability state must NOT feed the digest.
	c := sampleEnvelope(1000)
	c.State.Obs.Loop.Iter = 999999
	dc, _ := ArchDigest(&c.State.Arch)
	if dc != da {
		t.Fatalf("digest perturbed by observability-only change")
	}
}

// wantSnapErr asserts err is a structured snapshot SimError — the contract
// for every decode failure mode.
func wantSnapErr(t *testing.T, err error, what string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: no error", what)
	}
	se, ok := robust.AsSimError(err)
	if !ok || se.Kind != robust.KindSnapshot {
		t.Fatalf("%s: err = %v, want KindSnapshot SimError", what, err)
	}
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleEnvelope(2000)); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	good := buf.Bytes()

	t.Run("empty", func(t *testing.T) {
		_, err := Decode(bytes.NewReader(nil))
		wantSnapErr(t, err, "empty input")
	})
	t.Run("bad-magic", func(t *testing.T) {
		_, err := Decode(strings.NewReader("{\"magic\":\"notasnap\"}\n"))
		wantSnapErr(t, err, "bad magic")
	})
	t.Run("version-mismatch", func(t *testing.T) {
		hacked := bytes.Replace(good, []byte(`"version":1`), []byte(`"version":999`), 1)
		_, err := Decode(bytes.NewReader(hacked))
		wantSnapErr(t, err, "future version")
	})
	t.Run("hostile-body-len", func(t *testing.T) {
		line := good[:bytes.IndexByte(good, '\n')+1]
		hacked := bytes.Replace(line, []byte(`"body_len":`), []byte(`"body_len":9999999999999,"x":`), 1)
		_, err := Decode(bytes.NewReader(hacked))
		wantSnapErr(t, err, "hostile body length")
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{1, 10, len(good) / 2, len(good) - 1} {
			if _, err := Decode(bytes.NewReader(good[:n])); err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", n)
			}
		}
	})
	t.Run("corrupted-body", func(t *testing.T) {
		headerEnd := bytes.IndexByte(good, '\n') + 1
		for _, off := range []int{headerEnd, headerEnd + (len(good)-headerEnd)/2, len(good) - 1} {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0xff
			_, err := Decode(bytes.NewReader(bad))
			wantSnapErr(t, err, "flipped body byte")
		}
	})
}

func TestStoreRetentionAndLatest(t *testing.T) {
	dir := t.TempDir()
	st := &Store{Dir: dir, Retain: 2}
	for _, c := range []int64{100, 200, 300, 400} {
		if _, err := st.Save(sampleEnvelope(c)); err != nil {
			t.Fatalf("Save(%d): %v", c, err)
		}
	}
	names := listCheckpoints(dir)
	if len(names) != 2 {
		t.Fatalf("retention kept %d checkpoints (%v), want 2", len(names), names)
	}
	if names[0] != fileName(300) || names[1] != fileName(400) {
		t.Fatalf("retention kept %v, want the two newest (300, 400)", names)
	}

	// Without a final snapshot, Latest is the newest periodic checkpoint.
	p, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if filepath.Base(p) != fileName(400) {
		t.Fatalf("Latest = %s, want %s", p, fileName(400))
	}

	// A newer final snapshot wins; an older one does not.
	if _, err := st.SaveFinal(sampleEnvelope(450)); err != nil {
		t.Fatalf("SaveFinal: %v", err)
	}
	if p, _ = Latest(dir); filepath.Base(p) != "final"+Ext {
		t.Fatalf("Latest = %s, want final snapshot at cycle 450", p)
	}
	if _, err := st.SaveFinal(sampleEnvelope(50)); err != nil {
		t.Fatalf("SaveFinal: %v", err)
	}
	if p, _ = Latest(dir); filepath.Base(p) != fileName(400) {
		t.Fatalf("Latest = %s, want newest periodic over a stale final", p)
	}

	// Final snapshots survive further retention rounds.
	if _, err := st.Save(sampleEnvelope(500)); err != nil {
		t.Fatalf("Save(500): %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "final"+Ext)); err != nil {
		t.Fatalf("final snapshot pruned by retention: %v", err)
	}

	// No stray temp files remain after atomic writes.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestResolve(t *testing.T) {
	dir := t.TempDir()
	st := &Store{Dir: dir}
	path, err := st.Save(sampleEnvelope(123))
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if p, err := Resolve(path); err != nil || p != path {
		t.Fatalf("Resolve(file) = %s, %v; want the file itself", p, err)
	}
	if p, err := Resolve(dir); err != nil || p != path {
		t.Fatalf("Resolve(dir) = %s, %v; want latest checkpoint %s", p, err, path)
	}
	if _, err := Resolve(filepath.Join(dir, "missing")); err == nil {
		t.Fatalf("Resolve accepted a missing path")
	}
	if _, err := Latest(t.TempDir()); err == nil {
		t.Fatalf("Latest accepted an empty directory")
	}
}

func TestFirstDivergence(t *testing.T) {
	mk := func(pairs ...int64) []DigestEntry {
		var out []DigestEntry
		for i := 0; i < len(pairs); i += 2 {
			out = append(out, DigestEntry{Cycle: pairs[i], Digest: uint64(pairs[i+1])})
		}
		return out
	}
	cases := []struct {
		name     string
		a, b     []DigestEntry
		cycle    int64
		diverged bool
	}{
		{"identical", mk(10, 1, 20, 2), mk(10, 1, 20, 2), 0, false},
		{"empty", nil, mk(10, 1), 0, false},
		{"resumed-suffix", mk(10, 1, 20, 2, 30, 3), mk(20, 2, 30, 3), 0, false},
		{"digest-mismatch", mk(10, 1, 20, 2), mk(10, 1, 20, 9), 20, true},
		{"misaligned-cycles", mk(10, 1, 20, 2), mk(10, 1, 25, 2), 20, true},
		{"diverged-suffix", mk(10, 1, 20, 2, 30, 3), mk(20, 2, 30, 9), 30, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, d := FirstDivergence(tc.a, tc.b)
			if d != tc.diverged || (d && c != tc.cycle) {
				t.Fatalf("FirstDivergence = (%d, %v), want (%d, %v)", c, d, tc.cycle, tc.diverged)
			}
		})
	}
}
