// Animation: simulate a short camera orbit — one simulation per frame —
// while the VIO tracking service runs concurrently, reporting per-frame
// time and its stability (frame pacing is what XR quality-of-service is
// about). Demonstrates that FrameDefs are plain data: mutate the camera
// and re-render.
package main

import (
	"fmt"
	"log"

	"crisp"
	"crisp/internal/gmath"
	"crisp/internal/render"
	"crisp/internal/scene"
)

func main() {
	cfg := crisp.JetsonOrin()
	opts := crisp.DefaultRenderOptions()

	const frames = 4
	fmt.Printf("Platformer orbit + VIO on %s (%d frames, EVEN sharing)\n\n", cfg.Name, frames)

	var times []float64
	for fi := 0; fi < frames; fi++ {
		f, err := scene.ByName("PL")
		if err != nil {
			log.Fatal(err)
		}
		// Orbit the camera around the scene center.
		angle := float32(fi) * 0.25
		pos := gmath.V3(
			-10*gmath.Cos(angle)+14*gmath.Sin(angle),
			7,
			14*gmath.Cos(angle)+10*gmath.Sin(angle),
		)
		f.Cam = render.Camera{
			View: gmath.LookAt(pos, gmath.V3(2, 1, 0), gmath.V3(0, 1, 0)),
			Proj: f.Cam.Proj,
			Pos:  pos,
		}
		f.Light.CameraPos = pos

		gfx, err := render.RenderFrame(f, opts)
		if err != nil {
			log.Fatal(err)
		}
		comp, err := crisp.BuildCompute("VIO")
		if err != nil {
			log.Fatal(err)
		}
		job := crisp.Job{GPU: cfg, Graphics: gfx, Compute: comp, Policy: crisp.PolicyEven}
		res, err := job.Run()
		if err != nil {
			log.Fatal(err)
		}
		times = append(times, res.FrameTimeMS)
		fmt.Printf("  frame %d: %8d cycles  %.4f ms  (%d fragments)\n",
			fi, res.Cycles, res.FrameTimeMS, gfx.Raster.Fragments)
	}

	lo, hi := times[0], times[0]
	for _, t := range times {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	fmt.Printf("\nframe pacing: min %.4f ms, max %.4f ms (%.1f%% spread)\n",
		lo, hi, 100*(hi-lo)/lo)
}
