// Quickstart: render one frame of the Sponza scene, simulate it on the
// Jetson Orin at cycle level, and print the headline statistics.
package main

import (
	"fmt"
	"log"

	"crisp"
)

func main() {
	res, err := crisp.RunPair(crisp.JetsonOrin(), "SPL", "", crisp.PolicySerial, crisp.DefaultRenderOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Sponza on %s\n", crisp.JetsonOrin().Name)
	fmt.Printf("  frame time : %.3f ms (%d cycles)\n", res.FrameTimeMS, res.Cycles)
	for task, st := range res.PerTask {
		fmt.Printf("  task %d     : %d warp instructions, IPC %.2f, L1 hit %.0f%%, L2 hit %.0f%%\n",
			task, st.WarpInsts, st.IPC(), 100*st.L1HitRate(), 100*st.L2HitRate())
	}
	fmt.Printf("  L2 lines   : %d valid", res.L2Lines)
	for class, n := range res.L2ByClass {
		fmt.Printf(", %v=%d", class, n)
	}
	fmt.Println()

	fmt.Println("\nAvailable scenes:  ", crisp.SceneNames())
	fmt.Println("Available compute: ", crisp.ComputeNames())
	fmt.Println("Available policies:", crisp.Policies())
}
