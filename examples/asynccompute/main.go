// Async compute in a mixed-reality system: Sponza renders while the
// RITnet eye-segmentation network (NN) runs concurrently on the same GPU —
// the paper's motivating scenario (eye tracking supporting foveated
// rendering). Both tasks must run every frame; the design question is how
// to share the GPU. The example contrasts coarse spatial sharing (MPS:
// each SM dedicated to one task) with fine-grained intra-SM sharing
// (EVEN: both tasks on every SM — the async-compute model), reproducing
// the paper's finding that the complementary NN pairing gains most from
// intra-SM sharing.
package main

import (
	"fmt"
	"log"

	"crisp"
)

func main() {
	cfg := crisp.JetsonOrin()
	opts := crisp.DefaultRenderOptions()

	// Render once; replay the same traces under both policies.
	gfx, err := crisp.RenderScene("SPL", opts)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := crisp.BuildCompute("NN")
	if err != nil {
		log.Fatal(err)
	}

	run := func(policy crisp.PolicyKind) *crisp.Result {
		job := crisp.Job{GPU: cfg, Graphics: gfx, Compute: comp, Policy: policy}
		res, err := job.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	mps := run(crisp.PolicyMPS)
	even := run(crisp.PolicyEven)

	fmt.Printf("Sponza + RITnet(NN) on %s\n", cfg.Name)
	fmt.Printf("  MPS  (inter-SM, coarse)   : %8d cycles\n", mps.Cycles)
	fmt.Printf("  EVEN (intra-SM, async)    : %8d cycles\n", even.Cycles)
	fmt.Printf("  async-compute speedup     : %.2fx\n", float64(mps.Cycles)/float64(even.Cycles))

	fmt.Println("\nper-task statistics of the intra-SM run:")
	for task := 0; task < 2; task++ {
		st := even.PerTask[task]
		name := "render"
		if task == 1 {
			name = "NN"
		}
		fmt.Printf("  %-7s insts=%9d  IPC %5.2f  L2 hit %.0f%%  DRAM read %d KB\n",
			name, st.WarpInsts, st.IPC(), 100*st.L2HitRate(), st.DRAMReads/1024)
	}
	fmt.Println("\nThe register-heavy fragment shaders and the shared-memory-heavy")
	fmt.Println("matmuls occupy complementary SM resources, so interleaving them")
	fmt.Println("on every SM beats dedicating whole SMs to either task.")
}
