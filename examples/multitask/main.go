// Multi-task sharing: an XR frame where rendering co-runs with TWO system
// services — VIO tracking and RITnet eye segmentation — as three tasks on
// one GPU. The paper studies pairs and notes the framework "can be easily
// extended to support more than 2 workloads"; this example exercises that
// extension with three-way MPS and three-way intra-SM EVEN sharing.
package main

import (
	"fmt"
	"log"

	"crisp"
)

func main() {
	cfg := crisp.JetsonOrin()

	gfx, err := crisp.RenderScene("PL", crisp.DefaultRenderOptions())
	if err != nil {
		log.Fatal(err)
	}
	vio, err := crisp.BuildCompute("VIO")
	if err != nil {
		log.Fatal(err)
	}
	nn, err := crisp.BuildCompute("NN")
	if err != nil {
		log.Fatal(err)
	}

	run := func(policy crisp.PolicyKind) *crisp.Result {
		job := crisp.Job{
			GPU:      cfg,
			Graphics: gfx,
			Computes: []*crisp.ComputeWorkload{vio, nn},
			Policy:   policy,
		}
		res, err := job.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("Platformer + VIO + NN (three tasks) on %s\n\n", cfg.Name)
	for _, pol := range []crisp.PolicyKind{crisp.PolicySerial, crisp.PolicyMPS, crisp.PolicyEven} {
		res := run(pol)
		fmt.Printf("  %-7s %8d cycles\n", pol, res.Cycles)
		for task := 0; task < 3; task++ {
			if st, ok := res.PerTask[task]; ok {
				label := [3]string{"render", "VIO", "NN"}[task]
				fmt.Printf("          task %d (%-6s): %8d insts, L2 hit %.0f%%\n",
					task, label, st.WarpInsts, 100*st.L2HitRate())
			}
		}
	}
}
