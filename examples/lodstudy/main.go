// LoD study: render Sponza with mipmapping on and off, compare the L1
// texture traffic against the exact-LoD reference, and write both frames
// as PPM images — the paper's first rendering case study (Figs. 8 and 9).
package main

import (
	"fmt"
	"log"

	"crisp"
)

func main() {
	run := func(lod bool) *crisp.FrameResult {
		opts := crisp.DefaultRenderOptions()
		opts.LoD = lod
		opts.CollectRefTex = true
		res, err := crisp.RenderScene("SPL", opts)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	on := run(true)
	off := run(false)

	var refA, onA, offA int64
	for i := range on.Metrics {
		refA += on.Metrics[i].RefTexAccesses
		onA += on.Metrics[i].SimTexAccesses
		offA += off.Metrics[i].SimTexAccesses
	}
	fmt.Println("Sponza L1 texture accesses (coalesced 128B-line requests):")
	fmt.Printf("  exact-LoD reference : %8d\n", refA)
	fmt.Printf("  simulator, LoD on   : %8d  (%.1f%% off reference)\n", onA, 100*rel(onA, refA))
	fmt.Printf("  simulator, LoD off  : %8d  (%.1f%% off reference, %.1fx inflated)\n",
		offA, 100*rel(offA, refA), float64(offA)/float64(refA))

	for name, res := range map[string]*crisp.FrameResult{"sponza_lod_on.ppm": on, "sponza_lod_off.ppm": off} {
		if err := res.WritePPM(name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%dx%d)\n", name, res.W, res.H)
	}
}

func rel(a, ref int64) float64 {
	d := float64(a-ref) / float64(ref)
	if d < 0 {
		return -d
	}
	return d
}
