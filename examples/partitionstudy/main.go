// Partition study: one rendering+compute pair swept across every GPU
// partitioning policy the platform supports (serial, MPS, MiG, EVEN,
// warped-slicer, TAP), reporting throughput normalized to MPS — a
// miniature of the paper's two concurrency case studies.
package main

import (
	"flag"
	"fmt"
	"log"

	"crisp"
)

func main() {
	sceneName := flag.String("scene", "SPL", "rendering workload (SPL, SPH, PT, IT, PL, MT)")
	computeName := flag.String("compute", "VIO", "compute workload (VIO, HOLO, NN, UPSCALE, ATW)")
	gpuName := flag.String("gpu", "RTX3070", "GPU config (JetsonOrin or RTX3070)")
	flag.Parse()

	cfg, err := crisp.GPUByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	opts := crisp.DefaultRenderOptions()

	// Render once, reuse the traces for every policy (trace-driven!).
	gfx, err := crisp.RenderScene(*sceneName, opts)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := crisp.BuildCompute(*computeName)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s + %s on %s\n\n", *sceneName, *computeName, cfg.Name)
	var baseline int64
	for _, pol := range crisp.Policies() {
		job := crisp.Job{GPU: cfg, Graphics: gfx, Compute: comp, Policy: pol}
		res, err := job.Run()
		if err != nil {
			log.Fatal(err)
		}
		if pol == crisp.PolicyMPS {
			baseline = res.Cycles
		}
		norm := ""
		if baseline > 0 {
			norm = fmt.Sprintf("  (%.3fx vs MPS)", float64(baseline)/float64(res.Cycles))
		}
		fmt.Printf("  %-13s %9d cycles%s\n", pol, res.Cycles, norm)
	}
}
