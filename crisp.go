// Package crisp is a cycle-level GPU simulation platform for studying the
// CONCURRENT execution of raster-graphics rendering and general-purpose
// compute kernels, reproducing "CRISP: Concurrent Rendering and Compute
// Simulation Platform for GPUs" (Pan & Rogers, IISWC 2024).
//
// The platform has three layers:
//
//   - A functional graphics front end (Vulkan-style command submission,
//     batch-based vertex shading, immediate tiled rasterization with
//     early-Z and pre-calculated LoD, mipmapped texturing, and a unified
//     shader model) that renders real frames and records SASS-like
//     execution traces.
//   - CUDA-analog compute workload generators for the paper's XR system
//     tasks: visual-inertial odometry (VIO), hologram generation (HOLO),
//     and the RITnet eye-segmentation principal kernels (NN).
//   - A trace-driven, cycle-level GPU timing model (SMs with GTO warp
//     scheduling, scoreboards and per-scheduler pipelines; unified L1;
//     banked L2; bandwidth-metered DRAM) with pluggable GPU partitioning:
//     MPS, MiG, fine-grained intra-SM sharing, warped-slicer dynamic
//     partitioning, and TAP utility-based L2 set partitioning.
//
// Quick start:
//
//	res, err := crisp.RunPair(crisp.JetsonOrin(), "SPH", "VIO",
//	    crisp.PolicyEven, crisp.DefaultRenderOptions())
//	fmt.Println(res.Cycles, res.FrameTimeMS)
package crisp

import (
	"context"
	"io"

	"crisp/internal/compute"
	"crisp/internal/config"
	"crisp/internal/core"
	"crisp/internal/obs"
	"crisp/internal/render"
	"crisp/internal/robust"
	"crisp/internal/scenario"
	"crisp/internal/scene"
	"crisp/internal/snapshot"
)

// GPUConfig describes one simulated GPU (see JetsonOrin and RTX3070).
type GPUConfig = config.GPU

// JetsonOrin returns the embedded-GPU configuration (paper Table II).
func JetsonOrin() GPUConfig { return config.JetsonOrin() }

// RTX3070 returns the discrete-GPU configuration (paper Table II).
func RTX3070() GPUConfig { return config.RTX3070() }

// GPUByName resolves "JetsonOrin" or "RTX3070".
func GPUByName(name string) (GPUConfig, error) { return config.ByName(name) }

// GPUFromFile loads a custom JSON GPU configuration (any subset of fields
// overriding a named base config) — the artifact's experiment-
// customization workflow.
func GPUFromFile(path string) (GPUConfig, error) { return config.LoadFile(path) }

// ConfigDigest returns the canonical content hash of a GPU configuration
// (16 hex digits): field-order-stable, provenance-independent (a config
// loaded from a file digests identically to the structurally equal
// preset), and blind to host-execution knobs like Workers. It keys the
// batch service's content-addressed result cache and stamps snapshot-file
// headers, so both layers agree on configuration identity.
func ConfigDigest(cfg GPUConfig) string { return config.Digest(cfg) }

// RenderOptions configure the graphics pipeline (resolution, batch size,
// LoD, filtering).
type RenderOptions = render.Options

// DefaultRenderOptions is a 2K-class render with LoD enabled.
func DefaultRenderOptions() RenderOptions { return render.DefaultOptions() }

// FrameResult is a functionally rendered frame plus its recorded traces.
type FrameResult = render.Result

// PolicyKind selects a GPU partitioning policy.
type PolicyKind = core.PolicyKind

// The supported partitioning policies.
const (
	PolicySerial       = core.PolicySerial
	PolicyMPS          = core.PolicyMPS
	PolicyMiG          = core.PolicyMiG
	PolicyEven         = core.PolicyEven
	PolicyWarpedSlicer = core.PolicyWarpedSlicer
	PolicyTAP          = core.PolicyTAP
	PolicyPriority     = core.PolicyPriority
)

// Policies lists every supported policy.
func Policies() []PolicyKind { return core.PolicyKinds() }

// Job is one configured simulation (graphics and/or compute under a
// policy on a GPU).
type Job = core.Job

// Result is a completed simulation with per-stream and per-task
// statistics and the L2 composition snapshot.
type Result = core.Result

// ComputeWorkload is an in-order stream of compute kernels.
type ComputeWorkload = compute.Workload

// SceneNames lists the built-in rendering workloads (paper abbreviations:
// SPL, SPH, PT, IT, PL, MT).
func SceneNames() []string { return scene.Names() }

// ComputeNames lists the built-in compute workloads (VIO, HOLO, NN).
func ComputeNames() []string { return compute.Names() }

// RenderScene renders a built-in scene, producing a frame and its traces.
// Panics inside the renderer are recovered and returned as errors.
func RenderScene(name string, opts RenderOptions) (res *FrameResult, err error) {
	defer robust.RecoverAsError(&err, "crisp.RenderScene")
	return core.RenderScene(name, opts)
}

// BuildCompute builds a built-in compute workload. Panics inside the
// generator are recovered and returned as errors.
func BuildCompute(name string) (w *ComputeWorkload, err error) {
	defer robust.RecoverAsError(&err, "crisp.BuildCompute")
	return compute.ByName(name, core.ComputeStreamBase)
}

// Tracer receives cycle-stamped structured events from the timing model.
type Tracer = obs.Tracer

// TraceEvent is one cycle-stamped simulation event.
type TraceEvent = obs.Event

// TraceRecorder is a Tracer that appends every event to memory.
type TraceRecorder = obs.Recorder

// NewTraceRecorder returns an empty in-memory trace sink.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// IntervalSeries is a per-task interval metrics time series (IPC,
// occupancy, cache hit rates, DRAM bandwidth).
type IntervalSeries = obs.IntervalSeries

// StallCause classifies why a warp scheduler slot failed to issue.
type StallCause = obs.StallCause

// The stall causes, re-exported for result inspection.
const (
	StallScoreboard = obs.StallScoreboard
	StallMemPending = obs.StallMemPending
	StallPipeBusy   = obs.StallPipeBusy
	StallBarrier    = obs.StallBarrier
	StallEmptySlot  = obs.StallEmptySlot
)

// StallCauses lists the attributable stall causes.
func StallCauses() []StallCause { return obs.StallCauses() }

// RunOption tweaks a RunPair simulation (observability knobs).
type RunOption = core.RunOption

// WithTracer routes the run's structured trace events to t.
func WithTracer(t Tracer) RunOption { return core.WithTracer(t) }

// WithMetrics samples the interval metrics time series every interval
// cycles into Result.Metrics.
func WithMetrics(interval int64) RunOption { return core.WithMetrics(interval) }

// MetricsSample is one interval's per-task metrics points.
type MetricsSample = obs.Sample

// WithMetricsSink streams each interval metrics sample to fn as it is
// taken (combine with WithMetrics, which sets the cadence) — live
// progress for long-running simulations. fn runs on the simulation
// goroutine and must be cheap and internally synchronized.
func WithMetricsSink(fn func(MetricsSample)) RunOption { return core.WithMetricsSink(fn) }

// WithTimeline samples the per-task occupancy timeline every interval
// cycles into Result.Timeline.
func WithTimeline(interval int64) RunOption { return core.WithTimeline(interval) }

// WithWatchdog sets the forward-progress watchdog window in cycles: the
// run fails with a watchdog SimError when no instruction issues for that
// long while warps are resident (0 = default window, negative disables).
func WithWatchdog(window int64) RunOption { return core.WithWatchdog(window) }

// WithWorkers sets host-side SM stepping parallelism: 0 = auto
// (GOMAXPROCS capped at the SM count), 1 or negative = the serial
// reference engine, N > 1 = the two-phase parallel engine with N
// workers. Simulation results are bit-identical at every setting; only
// wall-clock time changes.
func WithWorkers(n int) RunOption { return core.WithWorkers(n) }

// WithNoSkip disables event-driven core sleeping: every busy SM is
// stepped at every visited cycle (the legacy oracle the fast path is
// diffed against). Results are bit-identical with or without it.
func WithNoSkip() RunOption { return core.WithNoSkip() }

// WithCycleBudget caps the run at n simulated cycles; crossing the budget
// fails the run with a budget SimError carrying a crash dump (0 = off).
func WithCycleBudget(n int64) RunOption { return core.WithCycleBudget(n) }

// WriteChromeTrace renders recorded events (and an optional interval
// series) as a Chrome trace-event JSON file loadable in Perfetto or
// chrome://tracing. streamLabel may be nil.
func WriteChromeTrace(w io.Writer, events []TraceEvent, series *IntervalSeries, streamLabel func(stream int) string) error {
	return obs.WriteChromeTrace(w, events, series, streamLabel)
}

// RunPair renders sceneName (may be empty), builds computeName (may be
// empty), and simulates them concurrently under policy on cfg. Optional
// RunOptions attach observability sinks and hardening limits. Panics
// inside the pipeline are recovered and returned as errors.
func RunPair(cfg GPUConfig, sceneName, computeName string, policy PolicyKind, opts RenderOptions, runOpts ...RunOption) (res *Result, err error) {
	defer robust.RecoverAsError(&err, "crisp.RunPair")
	return core.RunPair(cfg, sceneName, computeName, policy, opts, runOpts...)
}

// RunPairContext is RunPair with cooperative cancellation: when ctx is
// canceled or its deadline passes, the simulation stops and returns a
// canceled SimError whose crash dump records where the run stood.
func RunPairContext(ctx context.Context, cfg GPUConfig, sceneName, computeName string, policy PolicyKind, opts RenderOptions, runOpts ...RunOption) (res *Result, err error) {
	defer robust.RecoverAsError(&err, "crisp.RunPairContext")
	return core.RunPairContext(ctx, cfg, sceneName, computeName, policy, opts, runOpts...)
}

// MixSpec describes an N-tenant scenario: up to eight tenants (render
// frames and compute requests) with placement priorities, arrival
// schedules, and optional per-instance deadlines. See RunMix.
type MixSpec = scenario.MixSpec

// MixTenant is one tenant of a MixSpec: exactly one of Scene/Compute
// names its workload.
type MixTenant = scenario.Tenant

// Arrival schedules a tenant's instances: immediate, fixed-offset,
// periodic (a frame cadence), or seeded-bursty — always deterministic,
// never wall-clock.
type Arrival = scenario.Arrival

// The arrival schedule kinds.
const (
	ArriveImmediate = scenario.ArriveImmediate
	ArriveOffset    = scenario.ArriveOffset
	ArrivePeriodic  = scenario.ArrivePeriodic
	ArriveBursty    = scenario.ArriveBursty
)

// QoSReport is the per-tenant deadline/turnaround accounting of a mix run
// (Result.QoS).
type QoSReport = scenario.QoSReport

// TenantReport is one tenant's QoS accounting within a QoSReport.
type TenantReport = scenario.TenantReport

// MixPresetNames lists the named scenario presets (e.g.
// "vr-frame-deadline", "n-way-fair").
func MixPresetNames() []string { return scenario.PresetNames() }

// MixPreset returns a fresh, validated copy of a named preset mix.
func MixPreset(name string) (MixSpec, error) { return scenario.Preset(name) }

// RunMix simulates an N-tenant scenario under policy on cfg: every tenant
// becomes one GPU task with its own stream range, arrivals gate work
// admission at the scheduled cycles, and Result.QoS reports deadline and
// turnaround accounting per tenant. A two-tenant mix with immediate
// arrivals reproduces RunPair bit-identically. opts applies to every
// render tenant. Panics are recovered and returned as errors.
func RunMix(cfg GPUConfig, mix MixSpec, policy PolicyKind, opts RenderOptions, runOpts ...RunOption) (res *Result, err error) {
	defer robust.RecoverAsError(&err, "crisp.RunMix")
	return core.RunMix(cfg, mix, policy, opts, runOpts...)
}

// RunMixContext is RunMix with cooperative cancellation.
func RunMixContext(ctx context.Context, cfg GPUConfig, mix MixSpec, policy PolicyKind, opts RenderOptions, runOpts ...RunOption) (res *Result, err error) {
	defer robust.RecoverAsError(&err, "crisp.RunMixContext")
	return core.RunMixContext(ctx, cfg, mix, policy, opts, runOpts...)
}

// SimError is a structured simulation failure (validation, deadlock,
// watchdog, budget, cancellation, or recovered panic), usually carrying a
// CrashDump of simulator state at the failure cycle.
type SimError = robust.SimError

// CrashDump is the JSON-serializable simulator state snapshot attached to
// a SimError: per-SM occupancy, per-stream kernel progress, per-task
// stall attribution, and the partition policy's last decision.
type CrashDump = robust.CrashDump

// The SimError kinds.
const (
	ErrValidation = robust.KindValidation
	ErrDeadlock   = robust.KindDeadlock
	ErrWatchdog   = robust.KindWatchdog
	ErrBudget     = robust.KindBudget
	ErrCanceled   = robust.KindCanceled
	ErrPanic      = robust.KindPanic
	ErrSnapshot   = robust.KindSnapshot
)

// AsSimError extracts a *SimError from an error chain, reporting whether
// one was found.
func AsSimError(err error) (*SimError, bool) { return robust.AsSimError(err) }

// Snapshot is one versioned checkpoint file's content: the spec that
// rebuilds the job plus the complete captured simulator state.
type Snapshot = snapshot.Envelope

// DigestEntry is one sampled architectural-state digest from the
// determinism auditor (Result.Digests).
type DigestEntry = snapshot.DigestEntry

// FirstDivergence compares two digest series over their overlapping cycle
// range and returns the first cycle at which they disagree; ok=false means
// the series are consistent.
func FirstDivergence(a, b []DigestEntry) (cycle int64, ok bool) {
	return snapshot.FirstDivergence(a, b)
}

// WithCheckpointDir enables periodic checkpointing into dir: snapshots are
// written atomically (temp file + rename), old ones pruned beyond the
// retention bound, and a final snapshot is saved next to the crash dump
// when the run fails.
func WithCheckpointDir(dir string) RunOption { return core.WithCheckpointDir(dir) }

// WithCheckpointEvery sets the checkpoint cadence in cycles (0 = the
// default, 100k cycles).
func WithCheckpointEvery(n int64) RunOption { return core.WithCheckpointEvery(n) }

// WithCheckpointRetain bounds how many periodic checkpoints are kept
// (0 = default 3; the failure-time final snapshot is exempt).
func WithCheckpointRetain(n int) RunOption { return core.WithCheckpointRetain(n) }

// WithStateDigest arms the determinism auditor: every n cycles the run
// hashes its architectural state into Result.Digests, so two runs — or an
// interrupted-and-resumed run against an uninterrupted one — can be
// compared cycle-by-cycle with FirstDivergence.
func WithStateDigest(n int64) RunOption { return core.WithStateDigest(n) }

// LoadSnapshot reads a snapshot from a file path or checkpoint directory
// (a directory resolves to its latest snapshot). Corrupt, truncated, or
// version-mismatched files fail with an ErrSnapshot SimError, never a
// panic.
func LoadSnapshot(arg string) (env *Snapshot, err error) {
	defer robust.RecoverAsError(&err, "crisp.LoadSnapshot")
	return core.LoadSnapshot(arg)
}

// Resume rebuilds the job described by the snapshot's spec, restores the
// captured state, and runs to completion. runOpts apply on top — e.g. to
// keep checkpointing into the same directory. Panics are recovered and
// returned as errors.
func Resume(ctx context.Context, env *Snapshot, runOpts ...RunOption) (res *Result, err error) {
	defer robust.RecoverAsError(&err, "crisp.Resume")
	return core.ResumeContext(ctx, env, runOpts...)
}

// ResumeFile is Resume on a snapshot path or checkpoint directory.
func ResumeFile(ctx context.Context, arg string, runOpts ...RunOption) (res *Result, err error) {
	defer robust.RecoverAsError(&err, "crisp.ResumeFile")
	return core.ResumeFile(ctx, arg, runOpts...)
}
