module crisp

go 1.22
