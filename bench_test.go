package crisp

// Benchmark harness: one benchmark per paper table/figure, plus ablation
// benchmarks for the design choices DESIGN.md calls out. Each benchmark
// regenerates its experiment (results are memoized inside the experiments
// package, so additional b.N iterations are cheap) and reports the
// headline quantities as custom metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Tables are printed under -v via b.Logf.

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"crisp/internal/core"
	"crisp/internal/experiments"
	"crisp/internal/geom"
	"crisp/internal/obs"
	"crisp/internal/render"
	"crisp/internal/scene"
)

var benchScale = experiments.DefaultScale

func BenchmarkTable2_Configs(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table2().String()
	}
	b.Logf("\n%s", out)
}

func BenchmarkFig3_VertexInvocations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.R, "pearson_r")
		b.ReportMetric(100*r.MeanRelErr, "mean_overcount_%")
		if i == 0 {
			b.Logf("\n%s", r.Table)
		}
	}
}

func BenchmarkFig6_FrameTimeCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.R, "pearson_r")
		b.ReportMetric(100*r.SimHighFraction, "sim_reads_high_%")
		b.ReportMetric(r.ITScaling, "IT_4K/2K")
		b.ReportMetric(r.MaxScaling, "max_4K/2K")
		if i == 0 {
			b.Logf("\n%s", r.Table)
		}
	}
}

func BenchmarkFig7_MipMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Level0Distinct), "level0_texels")
		b.ReportMetric(float64(r.Level1Distinct), "level1_texels")
	}
}

func BenchmarkFig9_LodTextureAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MAPEOn, "mape_lod_on_%")
		b.ReportMetric(100*r.MAPEOff, "mape_lod_off_%")
		b.ReportMetric(r.Improvement, "mape_reduction_x")
		b.ReportMetric(r.MaxInflation, "max_inflation_x")
	}
}

func BenchmarkFig10_TexLinesPerCTA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Mode), "mode_lines")
		b.ReportMetric(r.Mean, "mean_lines")
		if i == 0 {
			b.Logf("drawcall %s:\n%s", r.Drawcall, r.Histogram)
		}
	}
}

func BenchmarkFig11_L2Composition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.TexFraction["PT"], "PT_tex_%")
		b.ReportMetric(100*r.TexFraction["SPL"], "SPL_tex_%")
		b.ReportMetric(100*r.L2Hit["PT"], "PT_L2hit_%")
		b.ReportMetric(100*r.L2Hit["SPL"], "SPL_L2hit_%")
		if i == 0 {
			b.Logf("\n%s", r.Table)
		}
	}
}

func BenchmarkFig12_WarpedSlicer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoMean[core.PolicyEven], "EVEN_vs_MPS")
		b.ReportMetric(r.GeoMean[core.PolicyWarpedSlicer], "Dynamic_vs_MPS")
		b.ReportMetric(r.BestNNSpeedup, "best_NN_speedup")
		if i == 0 {
			b.Logf("\n%s", r.Table)
		}
	}
}

func BenchmarkFig13_OccupancyTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.PeakWarps), "peak_warps")
		b.ReportMetric(float64(r.MinBusyWarps), "min_busy_warps")
		b.ReportMetric(float64(r.Samples), "samples")
	}
}

func BenchmarkFig14_TAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoMean[core.PolicyMiG], "MiG_vs_MPS")
		b.ReportMetric(r.GeoMean[core.PolicyTAP], "TAP_vs_MPS")
		if i == 0 {
			b.Logf("\n%s", r.Table)
		}
	}
}

func BenchmarkFig15_TAPComposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.RenderFraction, "render_L2_share_%")
		if i == 0 {
			b.Logf("\n%s", r.Table)
		}
	}
}

// BenchmarkCaseStudy_AsyncUpscale runs the DLSS-analog async-compute case
// study the paper's background motivates: tensor-core upscaling co-runs
// with FP/TEX-heavy rendering, so intra-SM sharing beats dedicating SMs.
func BenchmarkCaseStudy_AsyncUpscale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CaseStudyAsyncUpscale(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Norm[core.PolicyEven], "EVEN_vs_MPS")
		b.ReportMetric(r.Norm[core.PolicyPriority], "Priority_vs_MPS")
		if i == 0 {
			b.Logf("\n%s", r.Table)
		}
	}
}

// BenchmarkCaseStudy_QoS measures frame-ready time (the MTP-latency proxy
// of the paper's future-work QoS direction) under MPS/EVEN/Priority.
func BenchmarkCaseStudy_QoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CaseStudyQoS(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.FrameDone[core.PolicyEven]), "frame_ready_EVEN")
		b.ReportMetric(float64(r.FrameDone[core.PolicyPriority]), "frame_ready_Priority")
		if i == 0 {
			b.Logf("\n%s", r.Table)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §4) ---------------------------------

// BenchmarkAblation_VertexBatchSize sweeps the vertex batch size and
// reports the shaded-vertex inflation versus the unique count; the paper
// fixes 96 after the same sweep.
func BenchmarkAblation_VertexBatchSize(b *testing.B) {
	f, err := scene.ByName("SPL")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, size := range []int{32, 96, 256} {
			shaded, unique := 0, 0
			for _, d := range f.Draws {
				batches := geom.BatchIndices(d.Mesh.Idx, size)
				shaded += geom.ShadedVertexCount(batches)
				seen := map[uint32]bool{}
				for _, ix := range d.Mesh.Idx {
					seen[ix] = true
				}
				unique += len(seen)
			}
			b.ReportMetric(float64(shaded)/float64(unique), "shade_inflation_b"+itoa(size))
		}
	}
}

// BenchmarkAblation_EarlyZ renders with the early depth test on and off
// and reports the fragment (overdraw) inflation.
func BenchmarkAblation_EarlyZ(b *testing.B) {
	f, err := scene.ByName("SPL")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		opts := render.DefaultOptions()
		opts.W, opts.H = benchScale.W2K, benchScale.H2K
		on, err := render.RenderFrame(f, opts)
		if err != nil {
			b.Fatal(err)
		}
		opts.DisableEarlyZ = true
		off, err := render.RenderFrame(f, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(off.Raster.Fragments)/float64(on.Raster.Fragments), "overdraw_x")
	}
}

// BenchmarkAblation_GraphicsWindow sweeps the in-flight batch window to
// show the pipelining headroom of the ITR binning buffer.
func BenchmarkAblation_GraphicsWindow(b *testing.B) {
	gfx, err := experiments.Frame("SPL", benchScale.W2K, benchScale.H2K, true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, window := range []int{1, 4, 32} {
			job := core.Job{GPU: JetsonOrin(), Graphics: gfx, Policy: core.PolicySerial, GraphicsWindow: window}
			res, err := job.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Cycles), "cycles_w"+itoa(window))
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblation_StrictQuads compares the paper's approximated-quad
// warp packing (LoD pre-calculated at rasterization) against strict 2×2
// quads with runtime derivatives: the texture-access error of the
// approximation and its traffic delta.
func BenchmarkAblation_StrictQuads(b *testing.B) {
	f, err := scene.ByName("SPL")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		run := func(strict bool) (sim, ref float64) {
			opts := render.DefaultOptions()
			opts.W, opts.H = benchScale.W2K, benchScale.H2K
			opts.CollectRefTex = true
			opts.StrictQuads = strict
			res, err := render.RenderFrame(f, opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range res.Metrics {
				sim += float64(m.SimTexAccesses)
				ref += float64(m.RefTexAccesses)
			}
			return
		}
		aSim, aRef := run(false)
		sSim, sRef := run(true)
		b.ReportMetric(100*abs(aSim-aRef)/aRef, "approx_err_%")
		b.ReportMetric(100*abs(sSim-sRef)/sRef, "strict_err_%")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkAblation_SectoredCaches compares line-granular fills (the
// calibrated default) against 32B-sectored caches on DRAM read traffic
// for one rendered frame.
func BenchmarkAblation_SectoredCaches(b *testing.B) {
	gfx, err := experiments.Frame("SPL", benchScale.W2K, benchScale.H2K, true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		run := func(sector int) int64 {
			cfg := JetsonOrin()
			cfg.SectorSize = sector
			job := core.Job{GPU: cfg, Graphics: gfx, Policy: core.PolicySerial}
			res, err := job.Run()
			if err != nil {
				b.Fatal(err)
			}
			var bytes int64
			for _, st := range res.PerStream {
				bytes += st.DRAMReads
			}
			return bytes
		}
		full := run(0)
		sect := run(32)
		b.ReportMetric(float64(full)/1024, "dram_rd_KB_line")
		b.ReportMetric(float64(sect)/1024, "dram_rd_KB_sector32")
	}
}

// BenchmarkAblation_WarpScheduler compares greedy-then-oldest against
// loose round-robin warp scheduling on a full concurrent pair.
func BenchmarkAblation_WarpScheduler(b *testing.B) {
	gfx, err := experiments.Frame("SPL", benchScale.W2K, benchScale.H2K, true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		run := func(lrr bool) int64 {
			comp, err := experiments.BuildComputeForBench("VIO")
			if err != nil {
				b.Fatal(err)
			}
			job := core.Job{GPU: JetsonOrin(), Graphics: gfx, Compute: comp, Policy: core.PolicyEven, LRRScheduler: lrr}
			res, err := job.Run()
			if err != nil {
				b.Fatal(err)
			}
			return res.Cycles
		}
		b.ReportMetric(float64(run(false)), "cycles_GTO")
		b.ReportMetric(float64(run(true)), "cycles_LRR")
	}
}

// BenchmarkSimulatorSpeed reports the simulator's own throughput in
// simulated warp instructions per host second and simulated cycles per
// host second (the engineering metric of "Need for Speed": trustworthy
// simulators must also be fast).
//
// The stepping engine's worker count follows GOMAXPROCS (Workers = 0 =
// auto), so the standard -cpu flag sweeps the parallel engine:
//
//	go test -bench=BenchmarkSimulatorSpeed -cpu 1,4,8
//
// -cpu 1 resolves to the serial reference engine; higher counts exercise
// the two-phase parallel engine, which produces bit-identical results
// (the speedup is free of simulation-accuracy tradeoffs). Setting
// CRISP_BENCH_JSON=<path> appends each run's numbers to a JSON snapshot
// (see docs/PERFORMANCE.md), one array entry per worker count.
func BenchmarkSimulatorSpeed(b *testing.B) {
	gfx, err := experiments.Frame("SPH", benchScale.W2K, benchScale.H2K, true)
	if err != nil {
		b.Fatal(err)
	}
	comp, err := experiments.BuildComputeForBench("VIO")
	if err != nil {
		b.Fatal(err)
	}
	var insts, cycles, stepsExec, stepsSkip int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := core.Job{GPU: JetsonOrin(), Graphics: gfx, Compute: comp, Policy: core.PolicyEven}
		res, err := job.Run()
		if err != nil {
			b.Fatal(err)
		}
		insts = 0
		for _, st := range res.PerStream {
			insts += st.WarpInsts
		}
		cycles = res.Cycles
		stepsExec, stepsSkip = res.StepsExecuted, res.StepsSkipped
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	kips := float64(insts) * float64(b.N) / sec / 1000
	cps := float64(cycles) * float64(b.N) / sec
	b.ReportMetric(kips, "warp_KIPS")
	b.ReportMetric(cps, "sim_cycles/s")
	b.ReportMetric(skipRatio(stepsExec, stepsSkip), "skip_ratio")
	writeBenchSnapshot(b, benchEntry{
		Bench:      "SimulatorSpeed",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Runs:       b.N,
		SimCycles:  cycles,
		WarpInsts:  insts,
		ElapsedSec: sec,
		WarpKIPS:   kips,
		CyclesPerS: cps,
		SkipRatio:  skipRatio(stepsExec, stepsSkip),
	})
}

// skipRatio is the fraction of visited core steps covered by sleeping
// rather than executed (0 under -no-skip or when nothing ever slept).
func skipRatio(executed, skipped int64) float64 {
	if executed+skipped == 0 {
		return 0
	}
	return float64(skipped) / float64(executed+skipped)
}

// BenchmarkSimulatorSpeedMemBound measures the event-driven sleeping
// win on its best case: the paper's NN workload (convolution-as-matmul,
// memory bound), where warps spend most cycles parked on in-flight DRAM
// fills and whole cores sleep until the next fill lands. Each iteration
// runs the same job with core sleeping on and with the -no-skip oracle,
// and reports the throughput of both plus the speedup — the acceptance
// number tracked in docs/PERFORMANCE.md.
func BenchmarkSimulatorSpeedMemBound(b *testing.B) {
	comp, err := experiments.BuildComputeForBench("NN")
	if err != nil {
		b.Fatal(err)
	}
	// RTX3070 narrowed to the latency-bound regime sleeping targets:
	// shared memory sized so a single tiled-matmul CTA fills each SM (no
	// co-resident CTA to hide latency behind), a small MSHR file, and 8x
	// DRAM row latency. Every cooperative-load + barrier round then
	// parks the whole core for a full fill wave, and the simulated-time
	// cost concentrates exactly where cycle-by-cycle stepping wastes
	// host time on cores that provably cannot issue.
	cfg := RTX3070()
	cfg.SharedMemPerSM = 6 << 10
	cfg.L1MSHRs = 4
	cfg.L2MSHRs = 16
	cfg.DRAMLatency *= 8
	run := func(noSkip bool) (cycles, stepsExec, stepsSkip int64, sec float64) {
		t0 := time.Now()
		job := core.Job{GPU: cfg, Compute: comp, Policy: core.PolicyMPS, NoSkip: noSkip}
		res, err := job.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.Cycles, res.StepsExecuted, res.StepsSkipped, time.Since(t0).Seconds()
	}
	var onCycles, offCycles, stepsExec, stepsSkip int64
	var onSec, offSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s float64
		onCycles, stepsExec, stepsSkip, s = run(false)
		onSec += s
		offCycles, _, _, s = run(true)
		offSec += s
	}
	b.StopTimer()
	if onCycles != offCycles {
		b.Fatalf("core sleeping changed simulated cycles: %d with skip, %d with -no-skip", onCycles, offCycles)
	}
	n := float64(b.N)
	onCPS := float64(onCycles) * n / onSec
	offCPS := float64(offCycles) * n / offSec
	b.ReportMetric(onCPS, "sim_cycles/s")
	b.ReportMetric(offCPS, "noskip_cycles/s")
	b.ReportMetric(onCPS/offCPS, "speedup_x")
	b.ReportMetric(skipRatio(stepsExec, stepsSkip), "skip_ratio")
	writeBenchSnapshot(b, benchEntry{
		Bench:      "SimulatorSpeedMemBound",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Runs:       b.N,
		SimCycles:  onCycles,
		ElapsedSec: onSec / n,
		CyclesPerS: onCPS,
		SkipRatio:  skipRatio(stepsExec, stepsSkip),
		SpeedupX:   onCPS / offCPS,
	})
}

// benchEntry is one row of the BENCH_parallel.json snapshot.
type benchEntry struct {
	Bench      string  `json:"bench"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Runs       int     `json:"runs"`
	SimCycles  int64   `json:"sim_cycles"`
	WarpInsts  int64   `json:"warp_insts"`
	ElapsedSec float64 `json:"elapsed_sec"`
	WarpKIPS   float64 `json:"warp_kips,omitempty"`
	CyclesPerS float64 `json:"cycles_per_sec"`
	// SkipRatio and SpeedupX record the event-driven sleeping telemetry:
	// fraction of core steps skipped, and (for the mem-bound benchmark)
	// the sim-cycles/s ratio over the -no-skip oracle.
	SkipRatio float64 `json:"skip_ratio,omitempty"`
	SpeedupX  float64 `json:"speedup_x,omitempty"`
}

// writeBenchSnapshot upserts entry into the JSON array at
// CRISP_BENCH_JSON (no-op when unset), keyed by (bench, observed
// GOMAXPROCS): the testing package runs a preliminary iteration per -cpu
// sweep point before the measured one, and last-write-wins keeps exactly
// the measured numbers, one entry per worker count. GOMAXPROCS is read
// at run time rather than inferred from the row label because under
// -benchtime 1x the framework reuses the preliminary iteration — which
// ran at the previous sweep point's CPU count — for the first row.
func writeBenchSnapshot(b *testing.B, entry benchEntry) {
	path := os.Getenv("CRISP_BENCH_JSON")
	if path == "" {
		return
	}
	var entries []benchEntry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			b.Fatalf("CRISP_BENCH_JSON %s holds something other than a bench snapshot: %v", path, err)
		}
	}
	replaced := false
	for i := range entries {
		if entries[i].Bench == entry.Bench && entries[i].GOMAXPROCS == entry.GOMAXPROCS {
			entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, entry)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTracingOverhead quantifies the observability layer's cost on
// the same concurrent pair three ways:
//
//   - "off": tracer nil, no metrics — the default path. Every emission
//     site in the simulator reduces to one never-taken branch, so this is
//     the configuration whose overhead versus a hook-free simulator must
//     stay under 2%.
//   - "hooks": a NullTracer that discards events. The off-vs-hooks delta
//     (reported as hooks_overhead_%) measures the full cost of the
//     emission sites — branch, event construction, interface call. It is
//     a strict upper bound on the nil path's overhead, because the nil
//     path runs the same branches and skips everything else.
//   - "full": an in-memory Recorder plus interval metrics — the cost a
//     profiling run actually pays (full_overhead_%).
func BenchmarkTracingOverhead(b *testing.B) {
	gfx, err := experiments.Frame("SPL", benchScale.W2K, benchScale.H2K, true)
	if err != nil {
		b.Fatal(err)
	}
	comp, err := experiments.BuildComputeForBench("VIO")
	if err != nil {
		b.Fatal(err)
	}
	run := func(tr obs.Tracer, metrics int64) int64 {
		job := core.Job{GPU: JetsonOrin(), Graphics: gfx, Compute: comp,
			Policy: core.PolicyEven, Tracer: tr, MetricsInterval: metrics}
		res, err := job.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.Cycles
	}
	run(nil, 0) // warm all memoized state before timing

	var off, hooks, full time.Duration
	rec := obs.NewRecorder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		run(nil, 0)
		t1 := time.Now()
		run(obs.NullTracer{}, 0)
		t2 := time.Now()
		rec.Reset()
		run(rec, 2048)
		t3 := time.Now()
		off += t1.Sub(t0)
		hooks += t2.Sub(t1)
		full += t3.Sub(t2)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(off.Seconds()*1000/n, "off_ms/run")
	b.ReportMetric(100*(hooks.Seconds()-off.Seconds())/off.Seconds(), "hooks_overhead_%")
	b.ReportMetric(100*(full.Seconds()-off.Seconds())/off.Seconds(), "full_overhead_%")
	b.ReportMetric(float64(len(rec.Events())), "events/run")
}

// BenchmarkHardeningOverhead quantifies the happy-path cost of the
// simulation hardening layer on the same concurrent pair:
//
//   - "off": watchdog disabled, no budget, background context — the
//     pre-hardening loop shape.
//   - "on": default watchdog window, a cycle budget far above the run
//     length, and a cancellable (but never canceled) context — every
//     hardening check armed. The on-vs-off delta (hardening_overhead_%)
//     is the acceptance criterion's <2% figure.
func BenchmarkHardeningOverhead(b *testing.B) {
	gfx, err := experiments.Frame("SPL", benchScale.W2K, benchScale.H2K, true)
	if err != nil {
		b.Fatal(err)
	}
	comp, err := experiments.BuildComputeForBench("VIO")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run := func(armed bool) int64 {
		job := core.Job{GPU: JetsonOrin(), Graphics: gfx, Compute: comp, Policy: core.PolicyEven}
		runCtx := context.Background()
		if armed {
			job.CycleBudget = 1 << 40
			runCtx = ctx
		} else {
			job.WatchdogWindow = -1
		}
		res, err := job.RunContext(runCtx)
		if err != nil {
			b.Fatal(err)
		}
		return res.Cycles
	}
	if run(false) != run(true) {
		b.Fatal("hardening changed simulated cycles on the happy path")
	}

	var off, on time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		run(false)
		t1 := time.Now()
		run(true)
		t2 := time.Now()
		off += t1.Sub(t0)
		on += t2.Sub(t1)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(off.Seconds()*1000/n, "off_ms/run")
	b.ReportMetric(100*(on.Seconds()-off.Seconds())/off.Seconds(), "hardening_overhead_%")
}
