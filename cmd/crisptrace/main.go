// Command crisptrace implements the trace-driven workflow: collect a
// workload's execution traces once and replay them in any combination
// later — the Accel-Sim flow the paper builds on ("execution traces can
// be collected separately for each task and replayed together to achieve
// concurrent execution").
//
//	crisptrace collect -scene SPL -o spl.trace.gz
//	crisptrace collect -compute VIO -o vio.trace.gz
//	crisptrace replay -gpu JetsonOrin -policy EVEN spl.trace.gz vio.trace.gz
//	crisptrace info spl.trace.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"crisp"
	"crisp/internal/core"
	"crisp/internal/gpu"
	"crisp/internal/stats"
	"crisp/internal/trace"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "collect":
		collect(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "dump":
		dump(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: crisptrace collect|replay|info|dump [flags]")
	os.Exit(2)
}

// dump disassembles the first warp of a kernel in a trace file.
func dump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	kernelName := fs.String("kernel", "", "kernel to disassemble (default: first)")
	maxInsts := fs.Int("n", 64, "max instructions to print")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("dump: need a trace file")
	}
	kernels, err := trace.LoadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var k *trace.Kernel
	for _, cand := range kernels {
		if *kernelName == "" || cand.Name == *kernelName {
			k = cand
			break
		}
	}
	if k == nil {
		log.Fatalf("dump: kernel %q not found", *kernelName)
	}
	w := &k.CTAs[0].Warps[0]
	fmt.Printf("%s  CTA 0 warp 0  (%d instructions, showing %d)\n", k.Name, len(w.Insts), min(len(w.Insts), *maxInsts))
	for i, in := range w.Insts {
		if i >= *maxInsts {
			fmt.Println("  ...")
			break
		}
		operands := ""
		if in.Dst != 255 {
			operands = fmt.Sprintf(" R%d", in.Dst)
		}
		for _, src := range []uint8{in.SrcA, in.SrcB, in.SrcC} {
			if src != 255 {
				operands += fmt.Sprintf(", R%d", src)
			}
		}
		extra := ""
		if len(in.Addrs) > 0 {
			extra = fmt.Sprintf("  [%#x … %#x] %s", in.Addrs[0], in.Addrs[len(in.Addrs)-1], in.Class)
		}
		fmt.Printf("  %4d: %-9s%-16s mask=%08x%s\n", i, in.Op.String(), operands, in.Mask, extra)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// collect renders a scene or builds a compute workload and saves its
// kernels.
func collect(args []string) {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	sceneName := fs.String("scene", "", "rendering workload to trace")
	computeName := fs.String("compute", "", "compute workload to trace")
	out := fs.String("o", "out.trace.gz", "output trace file")
	w := fs.Int("w", 0, "render width")
	h := fs.Int("h", 0, "render height")
	lod := fs.Bool("lod", true, "enable mipmap LoD")
	fs.Parse(args)

	var kernels []*trace.Kernel
	switch {
	case *sceneName != "" && *computeName == "":
		opts := crisp.DefaultRenderOptions()
		if *w > 0 {
			opts.W = *w
		}
		if *h > 0 {
			opts.H = *h
		}
		opts.LoD = *lod
		res, err := crisp.RenderScene(*sceneName, opts)
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range res.Streams {
			kernels = append(kernels, st.Kernels...)
		}
	case *computeName != "" && *sceneName == "":
		wl, err := crisp.BuildCompute(*computeName)
		if err != nil {
			log.Fatal(err)
		}
		kernels = wl.Kernels
	default:
		log.Fatal("collect: need exactly one of -scene or -compute")
	}
	if err := trace.SaveFile(*out, kernels); err != nil {
		log.Fatal(err)
	}
	insts := 0
	for _, k := range kernels {
		insts += k.InstCount()
	}
	fmt.Printf("wrote %s: %d kernels, %d warp instructions\n", *out, len(kernels), insts)
}

// replay loads one or more trace files and runs them concurrently; each
// file becomes one task.
func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	gpuName := fs.String("gpu", "JetsonOrin", "GPU config")
	policy := fs.String("policy", "serial", "partition policy")
	fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		log.Fatal("replay: need at least one trace file")
	}

	cfg, err := crisp.GPUByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	g, err := gpu.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g.TaskWindows[0] = 32

	for task, path := range files {
		kernels, err := trace.LoadFile(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		// Group kernels by their recorded stream; renumber into the
		// task's stream space so files never collide.
		byStream := map[int][]*trace.Kernel{}
		var order []int
		for _, k := range kernels {
			if _, ok := byStream[k.Stream]; !ok {
				order = append(order, k.Stream)
			}
			byStream[k.Stream] = append(byStream[k.Stream], k)
		}
		for i, s := range order {
			id := task*core.ComputeStreamBase + i
			if task == 0 && id >= core.ComputeStreamBase {
				log.Fatalf("%s: too many streams", path)
			}
			ks := make([]*trace.Kernel, len(byStream[s]))
			for j, k := range byStream[s] {
				kk := *k
				kk.Stream = id
				ks[j] = &kk
			}
			def := gpu.StreamDef{ID: id, Task: task, Label: fmt.Sprintf("%s.s%d", path, i), Kernels: ks}
			if err := g.AddStream(def); err != nil {
				log.Fatal(err)
			}
		}
	}

	if err := installPolicy(g, core.PolicyKind(*policy), len(files)); err != nil {
		log.Fatal(err)
	}
	cycles, err := g.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d task(s) under %s on %s: %d cycles (%.4f ms)\n",
		len(files), *policy, cfg.Name, cycles, cfg.FrameTimeMS(cycles))
	t := stats.Table{Header: []string{"task", "warp insts", "L2 hit"}}
	for task, st := range g.TaskStats() {
		t.AddRow(fmt.Sprint(task), fmt.Sprint(st.WarpInsts), stats.Pct(st.L2HitRate()))
	}
	fmt.Println(t.String())
}

// info summarizes a trace file.
func info(args []string) {
	if len(args) == 0 {
		log.Fatal("info: need a trace file")
	}
	for _, path := range args {
		kernels, err := trace.LoadFile(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		var insts, ctas int
		streams := map[int]bool{}
		for _, k := range kernels {
			insts += k.InstCount()
			ctas += len(k.CTAs)
			streams[k.Stream] = true
		}
		fmt.Printf("%s: %d kernels, %d streams, %d CTAs, %d warp instructions\n",
			path, len(kernels), len(streams), ctas, insts)
		t := stats.Table{Header: []string{"kernel", "kind", "stream", "CTAs", "warp insts", "regs/thread", "shmem"}}
		for _, k := range kernels {
			t.AddRow(k.Name, k.Kind.String(), fmt.Sprint(k.Stream), fmt.Sprint(len(k.CTAs)),
				fmt.Sprint(k.InstCount()), fmt.Sprint(k.RegsPerThread), fmt.Sprint(k.SharedMem))
		}
		fmt.Println(t.String())
	}
}

// installPolicy wires the named policy for an n-task replay.
func installPolicy(g *gpu.GPU, kind core.PolicyKind, tasks int) error {
	p, err := core.BuildPolicy(g, kind, tasks)
	if err != nil {
		return err
	}
	if p != nil {
		g.SetPolicy(p)
	}
	return nil
}
