// Command crispsim runs one simulation: a rendering workload and/or a
// compute workload under a chosen GPU partitioning policy, printing
// per-stream and per-task statistics.
//
// Examples:
//
//	crispsim -scene SPL                       # graphics only, Orin
//	crispsim -scene SPH -compute VIO -policy EVEN
//	crispsim -compute NN -gpu RTX3070
//	crispsim -scene PT -compute HOLO -policy TAP -gpu RTX3070 -w 640 -h 360
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"crisp"
	"crisp/internal/stats"
	"crisp/internal/trace"
)

func main() {
	log.SetFlags(0)
	sceneName := flag.String("scene", "", "rendering workload: SPL, SPH, PT, IT, PL, MT (empty = none)")
	computeName := flag.String("compute", "", "compute workload: VIO, HOLO, NN, UPSCALE, ATW (empty = none)")
	scenarioName := flag.String("scenario", "", "N-tenant scenario preset: "+strings.Join(crisp.MixPresetNames(), ", ")+" (mutually exclusive with -scene/-compute)")
	policy := flag.String("policy", "serial", "partition policy: serial, MPS, MiG, EVEN, WarpedSlicer, TAP, Priority")
	gpuName := flag.String("gpu", "JetsonOrin", "GPU config: JetsonOrin or RTX3070")
	gpuFile := flag.String("config", "", "JSON GPU configuration file (overrides -gpu; artifact-style customization)")
	w := flag.Int("w", 0, "render width (default 2K-class 320)")
	h := flag.Int("h", 0, "render height (default 2K-class 180)")
	lod := flag.Bool("lod", true, "enable mipmap LoD")
	perStream := flag.Bool("streams", false, "print per-stream statistics")
	perKernel := flag.Bool("kernels", false, "print per-kernel launch timing")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto-loadable)")
	metricsOut := flag.String("metrics", "", "write an interval metrics CSV time series")
	metricsN := flag.Int64("metrics-interval", 2048, "interval metrics sampling period in cycles")
	watchdog := flag.Int64("watchdog", 0, "forward-progress watchdog window in cycles (0 = default, negative = off)")
	budget := flag.Int64("budget", 0, "hard cycle budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock timeout; cancels the simulation cleanly (0 = none)")
	dumpOut := flag.String("dump", "", "write the crash-dump JSON here when the run fails")
	ckptDir := flag.String("checkpoint-dir", "", "periodically checkpoint simulator state into this directory (plus a final snapshot on failure)")
	ckptEvery := flag.Int64("checkpoint-every", 0, "checkpoint cadence in cycles (0 = default 100000)")
	ckptRetain := flag.Int("checkpoint-retain", 0, "periodic checkpoints kept (0 = default 3; the final snapshot is exempt)")
	resume := flag.String("resume", "", "resume from a snapshot file or checkpoint directory (overrides -scene/-compute/-policy/-gpu)")
	stateDigest := flag.Bool("state-digest", false, "print the determinism auditor's architectural-state digest stream")
	digestEvery := flag.Int64("digest-every", 100_000, "digest sampling period in cycles for -state-digest")
	workers := flag.Int("j", 0, "host worker goroutines stepping SMs (0 = all CPUs, 1 = serial reference engine; results identical at any setting)")
	noSkip := flag.Bool("no-skip", false, "disable event-driven core sleeping (cycle-by-cycle oracle; results identical either way)")
	flag.Parse()

	if *sceneName == "" && *computeName == "" && *scenarioName == "" && *resume == "" {
		fmt.Fprintln(os.Stderr, "need -scene and/or -compute (or -scenario, or -resume)")
		flag.Usage()
		os.Exit(2)
	}
	if *scenarioName != "" && (*sceneName != "" || *computeName != "") {
		fmt.Fprintln(os.Stderr, "-scenario names its own workloads; drop -scene/-compute")
		flag.Usage()
		os.Exit(2)
	}

	var cfg crisp.GPUConfig
	var err error
	if *gpuFile != "" {
		cfg, err = crisp.GPUFromFile(*gpuFile)
	} else {
		cfg, err = crisp.GPUByName(*gpuName)
	}
	if err != nil {
		log.Fatal(err)
	}
	opts := crisp.DefaultRenderOptions()
	if *w > 0 {
		opts.W = *w
	}
	if *h > 0 {
		opts.H = *h
	}
	opts.LoD = *lod

	var runOpts []crisp.RunOption
	var rec *crisp.TraceRecorder
	if *traceOut != "" {
		rec = crisp.NewTraceRecorder()
		runOpts = append(runOpts, crisp.WithTracer(rec))
	}
	if *traceOut != "" || *metricsOut != "" {
		runOpts = append(runOpts, crisp.WithMetrics(*metricsN))
	}

	if *watchdog != 0 {
		runOpts = append(runOpts, crisp.WithWatchdog(*watchdog))
	}
	if *budget > 0 {
		runOpts = append(runOpts, crisp.WithCycleBudget(*budget))
	}
	if *ckptDir != "" {
		runOpts = append(runOpts, crisp.WithCheckpointDir(*ckptDir))
		if *ckptEvery > 0 {
			runOpts = append(runOpts, crisp.WithCheckpointEvery(*ckptEvery))
		}
		if *ckptRetain > 0 {
			runOpts = append(runOpts, crisp.WithCheckpointRetain(*ckptRetain))
		}
	}
	if *stateDigest {
		runOpts = append(runOpts, crisp.WithStateDigest(*digestEvery))
	}
	if *workers != 0 {
		runOpts = append(runOpts, crisp.WithWorkers(*workers))
	}
	if *noSkip {
		runOpts = append(runOpts, crisp.WithNoSkip())
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Ctrl-C / SIGTERM cancel the run context instead of killing the
	// process: the simulation stops at a cycle boundary and, when
	// -checkpoint-dir is set, flushes final.crispsnap so the run can be
	// continued with -resume. A second signal kills the process.
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var res *crisp.Result
	if *resume != "" {
		// Resume rebuilds the job from the snapshot's self-describing spec;
		// workload and policy flags are taken from the snapshot, not the
		// command line.
		env, lerr := crisp.LoadSnapshot(*resume)
		if lerr != nil {
			log.Fatal(lerr)
		}
		*sceneName, *computeName, *policy = env.Spec.Scene, env.Spec.Compute, env.Spec.Policy
		cfg = env.Spec.GPU
		if len(env.Spec.Mix) > 0 {
			var m crisp.MixSpec
			if json.Unmarshal(env.Spec.Mix, &m) == nil {
				*scenarioName = m.Name
			}
		}
		if *policy == "" {
			*policy = "serial"
		}
		res, err = crisp.Resume(ctx, env, runOpts...)
	} else if *scenarioName != "" {
		mix, merr := crisp.MixPreset(*scenarioName)
		if merr != nil {
			log.Fatal(merr)
		}
		res, err = crisp.RunMixContext(ctx, cfg, mix, crisp.PolicyKind(*policy), opts, runOpts...)
	} else {
		res, err = crisp.RunPairContext(ctx, cfg, *sceneName, *computeName, crisp.PolicyKind(*policy), opts, runOpts...)
	}
	if err != nil {
		if se, ok := crisp.AsSimError(err); ok {
			fmt.Fprintf(os.Stderr, "simulation failed: %s at cycle %d: %s\n", se.Kind, se.Cycle, se.Msg)
			if *dumpOut != "" && se.Dump != nil {
				if f, ferr := os.Create(*dumpOut); ferr == nil {
					if werr := se.Dump.WriteJSON(f); werr == nil {
						fmt.Fprintf(os.Stderr, "crash dump written to %s\n", *dumpOut)
					}
					f.Close()
				}
			}
			if *ckptDir != "" {
				fmt.Fprintf(os.Stderr, "final snapshot saved in %s (resume with -resume %s)\n", *ckptDir, *ckptDir)
			}
			os.Exit(1)
		}
		log.Fatal(err)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, rec, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace       : %s (%d events)\n", *traceOut, len(rec.Events()))
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics     : %s\n", *metricsOut)
	}

	fmt.Printf("%s", header(*sceneName, *computeName, *scenarioName, cfg.Name, *policy))
	if res.Resumed {
		fmt.Printf("resumed from: cycle %d\n", res.ResumedFrom)
	}
	fmt.Printf("cycles      : %d\n", res.Cycles)
	fmt.Printf("frame time  : %.4f ms\n", res.FrameTimeMS)
	if res.CheckpointSaves > 0 {
		fmt.Printf("checkpoints : %d saved in %v\n", res.CheckpointSaves, res.CheckpointSaveTime)
	}
	if *stateDigest {
		for _, d := range res.Digests {
			fmt.Printf("digest %12d %016x\n", d.Cycle, d.Digest)
		}
	}

	t := stats.Table{Header: []string{"task", "warp insts", "IPC", "L1 hit", "L2 hit", "DRAM rd KB", "DRAM wr KB"}}
	tasks := make([]int, 0, len(res.PerTask))
	for task := range res.PerTask {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	for _, task := range tasks {
		st := res.PerTask[task]
		t.AddRow(fmt.Sprint(task), fmt.Sprint(st.WarpInsts), stats.F(st.IPC()),
			stats.Pct(st.L1HitRate()), stats.Pct(st.L2HitRate()),
			fmt.Sprint(st.DRAMReads/1024), fmt.Sprint(st.DRAMWrites/1024))
	}
	fmt.Println(t.String())

	// Scenario runs carry per-tenant QoS accounting: deadlines, tardiness,
	// turnaround.
	if res.QoS != nil {
		fmt.Println(res.QoS.String())
	}

	// Print classes in sorted order: map iteration order would make the
	// output differ run to run, which the CI determinism gate diffs.
	fmt.Printf("L2 composition (%d valid lines):", res.L2Lines)
	classes := make([]int, 0, len(res.L2ByClass))
	for class := range res.L2ByClass {
		classes = append(classes, int(class))
	}
	sort.Ints(classes)
	for _, class := range classes {
		fmt.Printf(" %v=%d", trace.MemClass(class), res.L2ByClass[trace.MemClass(class)])
	}
	fmt.Println()

	if *perKernel {
		kt := stats.Table{Header: []string{"kernel", "stream", "task", "launched", "done", "cycles", "CTAs"}}
		for _, k := range res.Kernels {
			kt.AddRow(k.Name, fmt.Sprint(k.Stream), fmt.Sprint(k.Task),
				fmt.Sprint(k.Launched), fmt.Sprint(k.Done), fmt.Sprint(k.Done-k.Launched), fmt.Sprint(k.CTAs))
		}
		fmt.Println(kt.String())
	}

	if *perStream {
		st := stats.Table{Header: []string{"stream", "label", "kernels", "CTAs", "warp insts", "cycles"}}
		for _, s := range res.PerStream {
			st.AddRow(fmt.Sprint(s.Stream), s.Label, fmt.Sprint(s.KernelsLaunched),
				fmt.Sprint(s.CTAsLaunched), fmt.Sprint(s.WarpInsts), fmt.Sprint(s.Cycles))
		}
		fmt.Println(st.String())
	}
}

// writeTrace dumps the recorded events plus the interval series as a
// Chrome trace-event JSON file, labeling tracks from per-stream stats.
func writeTrace(path string, rec *crisp.TraceRecorder, res *crisp.Result) error {
	labels := make(map[int]string, len(res.PerStream))
	for _, s := range res.PerStream {
		labels[s.Stream] = s.Label
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := crisp.WriteChromeTrace(f, rec.Events(), res.Metrics,
		func(stream int) string { return labels[stream] }); err != nil {
		return err
	}
	return f.Close()
}

// writeMetrics dumps the interval series as CSV.
func writeMetrics(path string, res *crisp.Result) error {
	if res.Metrics == nil {
		return fmt.Errorf("no interval metrics were collected")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Metrics.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func header(sceneName, computeName, scenarioName, gpu, policy string) string {
	pair := sceneName
	if computeName != "" {
		if pair != "" {
			pair += "+"
		}
		pair += computeName
	}
	if scenarioName != "" {
		pair = "scenario " + scenarioName
	}
	return fmt.Sprintf("== %s on %s under %s ==\n", pair, gpu, policy)
}
