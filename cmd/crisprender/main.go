// Command crisprender runs the functional rendering pipeline on a built-in
// scene and writes the framebuffer as a PPM image (the model-rendered
// outputs of paper Figs. 5 and 8), along with per-drawcall pipeline
// statistics.
//
// Examples:
//
//	crisprender -scene IT -o planets.ppm          # paper Fig. 5
//	crisprender -scene SPL -lod=false -o off.ppm  # paper Fig. 8, LoD off
package main

import (
	"flag"
	"fmt"
	"log"

	"crisp"
	"crisp/internal/stats"
)

func main() {
	log.SetFlags(0)
	sceneName := flag.String("scene", "SPL", "scene: SPL, SPH, PT, IT, PL, MT")
	out := flag.String("o", "frame.ppm", "output image path (.png or .ppm)")
	w := flag.Int("w", 640, "render width")
	h := flag.Int("h", 360, "render height")
	lod := flag.Bool("lod", true, "enable mipmap LoD")
	flag.Parse()

	opts := crisp.DefaultRenderOptions()
	opts.W, opts.H = *w, *h
	opts.LoD = *lod

	res, err := crisp.RenderScene(*sceneName, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteImage(*out); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rendered %s at %dx%d (LoD %v) -> %s\n", *sceneName, *w, *h, *lod, *out)
	fmt.Printf("triangles %d, fragments %d, early-Z kills %d, covered pixels %d (%.0f%%)\n",
		res.Raster.Triangles, res.Raster.Fragments, res.Raster.EarlyZKill,
		res.CoveredPixels(), 100*float64(res.CoveredPixels())/float64(res.W*res.H))

	t := stats.Table{Header: []string{"drawcall", "batches", "verts-shaded", "tris", "tex-insts", "tex-acc"}}
	for _, m := range res.Metrics {
		t.AddRow(m.Name, fmt.Sprint(m.Batches), fmt.Sprint(m.ShadedVertices),
			fmt.Sprint(m.Triangles), fmt.Sprint(m.TexWarpInsts), fmt.Sprint(m.SimTexAccesses))
	}
	fmt.Println(t.String())
}
