// Command crispd is the CRISP batch simulation daemon: an HTTP/JSON
// service that queues simulation jobs, executes them on a bounded worker
// pool, and serves results from a content-addressed cache so identical
// submissions never simulate twice.
//
//	crispd -addr :8080 -state-dir /var/lib/crispd
//
// Submit jobs with plain HTTP:
//
//	curl -s localhost:8080/v1/jobs -d '{"scene": "SPL", "compute": "VIO", "policy": "EVEN"}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/metrics
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops admitting
// jobs, cancels running simulations (each flushes a final snapshot through
// the checkpoint layer), and exits 0. A daemon restarted on the same
// -state-dir resumes the interrupted jobs from their snapshots and serves
// previously computed results from the persisted cache.
//
// Execution is supervised: retryable failures are retried from the job's
// newest checkpoint with backoff (-max-attempts bounds the budget; a job
// beyond it is quarantined), and -isolate runs each attempt in a child
// worker process so a hard crash kills one job, not the daemon. -chaos
// plants seeded faults (kill@cycle, checkpoint corruption, delays) to
// exercise exactly that machinery.
//
// Sweeps (POST /v1/sweeps) shard a policy × workload × config grid across
// a fleet of -fleet shards under lease-based supervision: each shard
// renews a time-bounded lease by heartbeat while it runs its task, a
// missed heartbeat or crash revokes the lease, and the task is reassigned
// to resume from the newest shipped checkpoint. -worker-mode runs the
// bare worker protocol (one NDJSON request on stdin, events on stdout)
// for use as a -worker-bin peer.
//
// See docs/SERVICE.md for the API reference and lifecycle details.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crisp/internal/robust/chaos"
	"crisp/internal/service"
)

func main() {
	// Re-exec interception: when the supervisor spawned this process as an
	// isolated worker, run the worker protocol instead of the daemon.
	if os.Getenv(service.WorkerEnv) == "1" {
		os.Exit(service.WorkerMain())
	}

	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("crispd: ")

	addr := flag.String("addr", ":8080", "HTTP listen address")
	queueDepth := flag.Int("queue", 64, "max jobs admitted but not yet running; beyond it submissions get 429")
	workers := flag.Int("workers", 2, "concurrent simulations")
	runWorkers := flag.Int("j", 0, "per-simulation SM-stepping goroutines (0 = all CPUs, 1 = serial reference engine)")
	stateDir := flag.String("state-dir", "", "persist jobs, checkpoints, and the result cache here; restart resumes in-flight work (empty = memory only)")
	budget := flag.Int64("budget", 0, "default per-job cycle budget (0 = unlimited; jobs may set their own)")
	watchdog := flag.Int64("watchdog", 0, "default forward-progress watchdog window in cycles (0 = simulator default, negative = off)")
	ckptEvery := flag.Int64("checkpoint-every", 0, "checkpoint cadence in cycles for persisted jobs (0 = default 100000)")
	progressEvery := flag.Int64("progress-interval", 4096, "job progress sampling period in cycles")
	timelineBuf := flag.Int("timeline-buffer", 0, "per-job telemetry ring capacity in events (0 = default 8192)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max wait for running jobs to checkpoint and stop on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060; empty = off)")
	maxAttempts := flag.Int("max-attempts", 0, "attempts per job before quarantine (0 = default 3)")
	retryBase := flag.Duration("retry-base", 0, "base retry backoff delay (0 = default 100ms)")
	retryMax := flag.Duration("retry-max", 0, "retry backoff cap (0 = default 30s)")
	retrySeed := flag.Int64("retry-seed", 0, "seed for deterministic backoff jitter")
	isolate := flag.Bool("isolate", false, "run each job attempt in a child worker process so a hard crash kills one job, not the daemon")
	workerBin := flag.String("worker-bin", "", "worker executable for -isolate (empty = re-exec this binary)")
	chaosSpec := flag.String("chaos", "", "seeded fault injection spec, e.g. 'seed=7,kill@9000,corrupt=truncate,delay=20ms' (testing only)")
	fleet := flag.Int("fleet", 0, "sweep-tier shard count: concurrent sweep tasks (0 = same as -workers)")
	leaseTTL := flag.Duration("lease-ttl", 0, "sweep task lease duration; a lease not renewed within it is revoked and the task reassigned (0 = default 10s)")
	hbEvery := flag.Duration("heartbeat-every", 0, "sweep lease renewal cadence (0 = lease-ttl/4)")
	maxSweeps := flag.Int("max-sweeps", 0, "max concurrently live sweeps; beyond it submissions get 429 (0 = default 16)")
	maxSweepTasks := flag.Int("max-sweep-tasks", 0, "max grid cells one sweep may expand to (0 = default 512)")
	timelineSubs := flag.Int("timeline-subs", 0, "max live SSE subscribers per timeline; beyond it requests get 503 (0 = default 256, negative = unlimited)")
	workerMode := flag.Bool("worker-mode", false, "run as a bare fleet worker: read one job request from stdin, stream NDJSON events to stdout, exit (for -worker-bin peers)")
	flag.Parse()

	if *workerMode {
		os.Exit(service.WorkerMain())
	}

	var cspec chaos.Spec
	if *chaosSpec != "" {
		var err error
		cspec, err = chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatalf("-chaos: %v", err)
		}
		log.Printf("chaos enabled: %s", cspec.String())
	}
	var workerCmd []string
	if *workerBin != "" {
		workerCmd = []string{*workerBin}
	}

	srv, err := service.New(service.Config{
		QueueDepth:       *queueDepth,
		Workers:          *workers,
		RunWorkers:       *runWorkers,
		StateDir:         *stateDir,
		DefaultBudget:    *budget,
		WatchdogWindow:   *watchdog,
		CheckpointEvery:  *ckptEvery,
		ProgressInterval: *progressEvery,
		TimelineBuffer:   *timelineBuf,
		MaxAttempts:      *maxAttempts,
		RetryBase:        *retryBase,
		RetryMax:         *retryMax,
		RetrySeed:        *retrySeed,
		Isolate:          *isolate,
		WorkerCommand:    workerCmd,
		Chaos:            cspec,
		MaxTimelineSubs:  *timelineSubs,
		FleetWorkers:     *fleet,
		LeaseTTL:         *leaseTTL,
		HeartbeatEvery:   *hbEvery,
		MaxSweeps:        *maxSweeps,
		MaxSweepTasks:    *maxSweepTasks,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *stateDir != "" {
		st := srv.Snapshot()
		log.Printf("state dir %s: %d cached results, %d jobs recovered",
			*stateDir, st.CachedResults, st.QueueDepth)
	}
	srv.Start()

	// Profiling is opt-in and lives on its own listener + mux so the
	// default registration in net/http/pprof's init never reaches the
	// public API mux: without -pprof, /debug/pprof does not exist.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		var err error
		pprofSrv, err = startPprof(*pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen: %v", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// Report the bound address (with the real port when -addr is :0) on a
	// line scripts can wait for.
	log.Printf("listening on %s (queue %d, workers %d)", ln.Addr(), *queueDepth, *workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("received %s, draining", s)
	case err := <-serveErr:
		log.Fatalf("http server: %v", err)
	}

	// Drain protocol: stop admitting (new submissions get 503, health goes
	// unready for load balancers), checkpoint and stop running jobs, then
	// close the listeners — pprof included — and exit 0.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := drainAndShutdown(ctx, srv.Drain, pprofSrv, httpSrv); err != nil {
		log.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	st := srv.Snapshot()
	log.Printf("drained: %d done, %d failed, %d canceled, %d results cached; bye",
		st.Done, st.Failed, st.Canceled, st.CachedResults)
}

// startPprof serves net/http/pprof on its own listener and returns the
// server so the drain path can shut it down — before this, the pprof
// listener was fire-and-forget and outlived the drain, holding the port
// (and any in-flight profile) past the point the daemon claimed to be
// stopped.
func startPprof(addr string) (*http.Server, error) {
	pln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	pmux := http.NewServeMux()
	pmux.HandleFunc("/debug/pprof/", pprof.Index)
	pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("pprof on %s", pln.Addr())
	psrv := &http.Server{Addr: pln.Addr().String(), Handler: pmux}
	go func() {
		if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	return psrv, nil
}

// drainAndShutdown runs the shutdown sequence in its required order:
// drain the service first — the pprof listener stays up throughout, so a
// drain that hangs can still be profiled — then shut down pprof, then the
// public API listener last (readyz keeps answering 503 until the very
// end, which is what load balancers key off). A failed drain still closes
// both listeners before the error propagates.
func drainAndShutdown(ctx context.Context, drain func(context.Context) error, pprofSrv, apiSrv *http.Server) error {
	drainErr := drain(ctx)
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("pprof shutdown: %v", err)
		}
	}
	if drainErr != nil {
		if apiSrv != nil {
			apiSrv.Close()
		}
		return drainErr
	}
	if apiSrv != nil {
		if err := apiSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("http shutdown: %v", err)
		}
	}
	return nil
}
