package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"
)

func httpGet(t *testing.T, addr, path string) (int, error) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestDrainAndShutdownOrdering pins the shutdown sequence: the pprof and
// API listeners must both still answer while the drain runs (a stuck
// drain is exactly when an operator wants a goroutine profile, and load
// balancers watch readyz until the end), and both must be closed once
// drainAndShutdown returns.
func TestDrainAndShutdownOrdering(t *testing.T) {
	pprofSrv, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("startPprof: %v", err)
	}

	apiLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("api listen: %v", err)
	}
	apiSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go apiSrv.Serve(apiLn)
	apiAddr := apiLn.Addr().String()

	var pprofUpDuringDrain, apiUpDuringDrain bool
	drain := func(ctx context.Context) error {
		if code, err := httpGet(t, pprofSrv.Addr, "/debug/pprof/cmdline"); err == nil && code == http.StatusOK {
			pprofUpDuringDrain = true
		}
		if _, err := httpGet(t, apiAddr, "/"); err == nil {
			apiUpDuringDrain = true
		}
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := drainAndShutdown(ctx, drain, pprofSrv, apiSrv); err != nil {
		t.Fatalf("drainAndShutdown: %v", err)
	}

	if !pprofUpDuringDrain {
		t.Error("pprof listener was down during drain; it must outlive the drain so a stuck drain can be profiled")
	}
	if !apiUpDuringDrain {
		t.Error("API listener was down during drain; it must keep serving readyz until the drain completes")
	}
	if _, err := httpGet(t, pprofSrv.Addr, "/debug/pprof/cmdline"); err == nil {
		t.Error("pprof listener still serving after drainAndShutdown returned")
	}
	if _, err := httpGet(t, apiAddr, "/"); err == nil {
		t.Error("API listener still serving after drainAndShutdown returned")
	}
}

// TestDrainAndShutdownFailedDrain pins the failure path: a drain error
// still closes both listeners before propagating, so a botched drain
// never leaves a half-alive daemon holding ports.
func TestDrainAndShutdownFailedDrain(t *testing.T) {
	pprofSrv, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("startPprof: %v", err)
	}
	apiLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("api listen: %v", err)
	}
	apiSrv := &http.Server{Handler: http.NotFoundHandler()}
	go apiSrv.Serve(apiLn)

	boom := errors.New("jobs still running")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = drainAndShutdown(ctx, func(context.Context) error { return boom }, pprofSrv, apiSrv)
	if !errors.Is(err, boom) {
		t.Fatalf("drainAndShutdown error = %v, want %v", err, boom)
	}
	if _, err := httpGet(t, pprofSrv.Addr, "/debug/pprof/cmdline"); err == nil {
		t.Error("pprof listener still serving after failed drain")
	}
	if _, err := httpGet(t, apiLn.Addr().String(), "/"); err == nil {
		t.Error("API listener still serving after failed drain")
	}
}

// TestDrainAndShutdownNoPprof covers the default deployment (-pprof
// unset): a nil pprof server is skipped, not dereferenced.
func TestDrainAndShutdownNoPprof(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := drainAndShutdown(ctx, func(context.Context) error { return nil }, nil, nil); err != nil {
		t.Fatalf("drainAndShutdown: %v", err)
	}
}
