// Command crispd-worker is the isolated job executor spawned by crispd
// when it runs with -isolate. It reads a single job request as JSON on
// stdin, streams progress samples and a final result (or a classified
// error) as newline-delimited JSON events on stdout, and exits.
//
// crispd normally re-executes its own binary as the worker; this thin
// standalone build exists for deployments that want a separate,
// minimal worker image (point crispd at it with -worker-bin).
package main

import (
	"os"

	"crisp/internal/service"
)

func main() {
	os.Exit(service.WorkerMain())
}
