// Command crispprof is the observability front end: it runs one
// concurrent simulation with full cycle-domain tracing enabled and
// produces (a) a Chrome trace-event JSON file loadable in Perfetto or
// chrome://tracing, with per-stream tracks for kernels, CTAs, batch
// boundaries, repartition decisions, and memory-contention markers,
// (b) a CSV interval time series of per-task IPC, occupancy, cache hit
// rates, and DRAM bandwidth, and (c) a per-task stall-attribution
// summary on stdout.
//
// Examples:
//
//	crispprof -scene PT -compute VIO -policy WarpedSlicer -trace out.json
//	crispprof -compute NN -gpu RTX3070 -trace nn.json -metrics nn.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"crisp"
	"crisp/internal/stats"
)

func main() {
	log.SetFlags(0)
	sceneName := flag.String("scene", "", "rendering workload: SPL, SPH, PT, IT, PL, MT (empty = none)")
	computeName := flag.String("compute", "", "compute workload: VIO, HOLO, NN, UPSCALE, ATW (empty = none)")
	policy := flag.String("policy", "EVEN", "partition policy: serial, MPS, MiG, EVEN, WarpedSlicer, TAP, Priority")
	gpuName := flag.String("gpu", "JetsonOrin", "GPU config: JetsonOrin or RTX3070")
	gpuFile := flag.String("config", "", "JSON GPU configuration file (overrides -gpu)")
	w := flag.Int("w", 0, "render width (default 2K-class 320)")
	h := flag.Int("h", 0, "render height (default 2K-class 180)")
	traceOut := flag.String("trace", "", "Chrome trace-event JSON output path")
	metricsOut := flag.String("metrics", "", "interval metrics CSV output path (default: derived from -trace)")
	metricsN := flag.Int64("interval", 2048, "interval metrics sampling period in cycles")
	watchdog := flag.Int64("watchdog", 0, "forward-progress watchdog window in cycles (0 = default, negative = off)")
	budget := flag.Int64("budget", 0, "hard cycle budget (0 = unlimited)")
	flag.Parse()

	if *sceneName == "" && *computeName == "" {
		fmt.Fprintln(os.Stderr, "need -scene and/or -compute")
		flag.Usage()
		os.Exit(2)
	}
	if *traceOut == "" && *metricsOut == "" {
		fmt.Fprintln(os.Stderr, "need -trace and/or -metrics (nothing to profile into)")
		flag.Usage()
		os.Exit(2)
	}
	// Profiling runs always produce the time series; when only -trace was
	// given, place the CSV next to the JSON.
	if *metricsOut == "" {
		*metricsOut = strings.TrimSuffix(*traceOut, ".json") + ".csv"
	}

	var cfg crisp.GPUConfig
	var err error
	if *gpuFile != "" {
		cfg, err = crisp.GPUFromFile(*gpuFile)
	} else {
		cfg, err = crisp.GPUByName(*gpuName)
	}
	if err != nil {
		log.Fatal(err)
	}
	opts := crisp.DefaultRenderOptions()
	if *w > 0 {
		opts.W = *w
	}
	if *h > 0 {
		opts.H = *h
	}

	rec := crisp.NewTraceRecorder()
	runOpts := []crisp.RunOption{crisp.WithTracer(rec), crisp.WithMetrics(*metricsN)}
	if *watchdog != 0 {
		runOpts = append(runOpts, crisp.WithWatchdog(*watchdog))
	}
	if *budget > 0 {
		runOpts = append(runOpts, crisp.WithCycleBudget(*budget))
	}
	res, err := crisp.RunPair(cfg, *sceneName, *computeName, crisp.PolicyKind(*policy), opts, runOpts...)
	if err != nil {
		if se, ok := crisp.AsSimError(err); ok {
			log.Fatalf("simulation failed: %s at cycle %d: %s", se.Kind, se.Cycle, se.Msg)
		}
		log.Fatal(err)
	}

	fmt.Printf("== %s on %s under %s: %d cycles (%.4f ms) ==\n",
		pairName(*sceneName, *computeName), cfg.Name, *policy, res.Cycles, res.FrameTimeMS)

	printStallSummary(res)

	if *traceOut != "" {
		if err := writeTrace(*traceOut, rec, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace   : %s (%d events)\n", *traceOut, len(rec.Events()))
	}
	if err := writeMetrics(*metricsOut, res); err != nil {
		log.Fatal(err)
	}
	samples := 0
	if res.Metrics != nil {
		samples = len(res.Metrics.Samples)
	}
	fmt.Printf("metrics : %s (%d samples)\n", *metricsOut, samples)
}

// printStallSummary renders the per-task stall-attribution table: for
// every task, each cause's share of the task's scheduler slots.
func printStallSummary(res *crisp.Result) {
	header := []string{"task", "label", "issue slots", "issued"}
	for _, c := range crisp.StallCauses() {
		header = append(header, c.String())
	}
	t := stats.Table{Header: header}
	tasks := make([]int, 0, len(res.PerTask))
	for task := range res.PerTask {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	for _, task := range tasks {
		st := res.PerTask[task]
		slots := st.WarpInsts + st.StallTotal()
		row := []string{fmt.Sprint(task), st.Label, fmt.Sprint(slots)}
		if slots == 0 {
			row = append(row, "-")
			for range crisp.StallCauses() {
				row = append(row, "-")
			}
		} else {
			row = append(row, stats.Pct(float64(st.WarpInsts)/float64(slots)))
			for _, c := range crisp.StallCauses() {
				row = append(row, stats.Pct(st.StallFraction(c)))
			}
		}
		t.AddRow(row...)
	}
	fmt.Println(t.String())
	if res.SchedSlots > 0 {
		fmt.Printf("scheduler slots: %d total, %d empty (%.1f%%)\n\n",
			res.SchedSlots, res.EmptySlots, 100*float64(res.EmptySlots)/float64(res.SchedSlots))
	}
}

// writeTrace dumps the recorded events plus the interval series as a
// Chrome trace-event JSON file, labeling tracks from per-stream stats.
func writeTrace(path string, rec *crisp.TraceRecorder, res *crisp.Result) error {
	labels := make(map[int]string, len(res.PerStream))
	for _, s := range res.PerStream {
		labels[s.Stream] = s.Label
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := crisp.WriteChromeTrace(f, rec.Events(), res.Metrics,
		func(stream int) string { return labels[stream] }); err != nil {
		return err
	}
	return f.Close()
}

// writeMetrics dumps the interval series as CSV.
func writeMetrics(path string, res *crisp.Result) error {
	if res.Metrics == nil {
		return fmt.Errorf("no interval metrics were collected")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Metrics.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func pairName(sceneName, computeName string) string {
	pair := sceneName
	if computeName != "" {
		if pair != "" {
			pair += "+"
		}
		pair += computeName
	}
	return pair
}
