// Command crispviz renders ASCII visualizations of a concurrent run — the
// reproduction's analog of the artifact's visualizer logs: a per-task
// occupancy timeline (paper Fig. 13) and an L2 composition bar
// (paper Figs. 11/15).
//
//	crispviz -scene PT -compute VIO -policy WarpedSlicer -gpu JetsonOrin
//
// With -serve it instead points the embedded exploration UI (the same
// one crispd ships at /ui/) at a local results directory — a crispd
// state dir's results/ subdirectory — with no daemon required:
//
//	crispviz -serve 127.0.0.1:8090 -results /var/lib/crispd/results
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"crisp"
	"crisp/internal/compute"
	"crisp/internal/core"
	"crisp/internal/service"
	"crisp/internal/trace"
)

func main() {
	log.SetFlags(0)
	sceneName := flag.String("scene", "PT", "rendering workload")
	computeName := flag.String("compute", "VIO", "compute workload")
	policy := flag.String("policy", "EVEN", "partition policy")
	gpuName := flag.String("gpu", "JetsonOrin", "GPU config")
	width := flag.Int("width", 72, "chart width in columns")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto-loadable)")
	metricsOut := flag.String("metrics", "", "write an interval metrics CSV time series")
	serveAddr := flag.String("serve", "", "serve the exploration UI over a results dir at this address instead of simulating")
	resultsDir := flag.String("results", "", "results directory for -serve (a crispd state dir's results/ subdirectory)")
	flag.Parse()

	if *serveAddr != "" {
		if *resultsDir == "" {
			log.Fatal("-serve requires -results <dir>")
		}
		if st, err := os.Stat(*resultsDir); err != nil || !st.IsDir() {
			log.Fatalf("-results %s: not a directory", *resultsDir)
		}
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving %s — open http://%s/ui/", *resultsDir, ln.Addr())
		log.Fatal(http.Serve(ln, service.StaticSite(*resultsDir)))
	}

	cfg, err := crisp.GPUByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	gfx, err := crisp.RenderScene(*sceneName, crisp.DefaultRenderOptions())
	if err != nil {
		log.Fatal(err)
	}
	comp, err := compute.ByName(*computeName, core.ComputeStreamBase)
	if err != nil {
		log.Fatal(err)
	}
	job := crisp.Job{
		GPU:              cfg,
		Graphics:         gfx,
		Compute:          comp,
		Policy:           crisp.PolicyKind(*policy),
		TimelineInterval: 512,
	}
	var rec *crisp.TraceRecorder
	if *traceOut != "" {
		rec = crisp.NewTraceRecorder()
		job.Tracer = rec
	}
	if *traceOut != "" || *metricsOut != "" {
		job.MetricsInterval = 2048
	}
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	if *traceOut != "" {
		if err := dumpTrace(*traceOut, rec, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events)\n", *traceOut, len(rec.Events()))
	}
	if *metricsOut != "" {
		if err := dumpMetrics(*metricsOut, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}

	fmt.Printf("%s + %s on %s under %s: %d cycles\n\n",
		*sceneName, *computeName, cfg.Name, *policy, res.Cycles)

	fmt.Println("occupancy timeline (resident warps; r = render, c = compute):")
	plotTimeline(res, cfg.NumSMs*cfg.MaxWarpsPerSM, *width)

	fmt.Println("\nL2 composition:")
	plotComposition(res, *width)
}

// dumpTrace writes the recorded events as Chrome trace-event JSON.
func dumpTrace(path string, rec *crisp.TraceRecorder, res *crisp.Result) error {
	labels := make(map[int]string, len(res.PerStream))
	for _, s := range res.PerStream {
		labels[s.Stream] = s.Label
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := crisp.WriteChromeTrace(f, rec.Events(), res.Metrics,
		func(stream int) string { return labels[stream] }); err != nil {
		return err
	}
	return f.Close()
}

// dumpMetrics writes the interval series as CSV.
func dumpMetrics(path string, res *crisp.Result) error {
	if res.Metrics == nil {
		return fmt.Errorf("no interval metrics were collected")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Metrics.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// plotTimeline draws the two per-task occupancy series as row-per-sample
// bars.
func plotTimeline(res *crisp.Result, capacity, width int) {
	if res.Timeline == nil || len(res.Timeline.Samples) == 0 {
		fmt.Println("  (no samples)")
		return
	}
	samples := res.Timeline.Samples
	// Downsample to at most 40 rows.
	step := 1
	if len(samples) > 40 {
		step = len(samples) / 40
	}
	for i := 0; i < len(samples); i += step {
		s := samples[i]
		g := s.WarpsByStream[0]
		c := s.WarpsByStream[1]
		gw := g * width / capacity
		cw := c * width / capacity
		bar := strings.Repeat("r", gw) + strings.Repeat("c", cw)
		fmt.Printf("  %9d | %-*s g=%-4d c=%-4d\n", s.Cycle, width, bar, g, c)
	}
}

// plotComposition draws the final L2 line ownership by data class.
func plotComposition(res *crisp.Result, width int) {
	if res.L2Lines == 0 {
		fmt.Println("  (empty)")
		return
	}
	classes := []trace.MemClass{trace.ClassTexture, trace.ClassPipeline, trace.ClassFramebuffer, trace.ClassCompute}
	for _, cl := range classes {
		n := res.L2ByClass[cl]
		w := n * width / res.L2Lines
		fmt.Printf("  %-12s |%-*s| %5.1f%% (%d lines)\n",
			cl, width, strings.Repeat("#", w), 100*float64(n)/float64(res.L2Lines), n)
	}
}
