// Command crispbench regenerates the paper's tables and figures as text
// tables — the benchmark harness of the reproduction. Each experiment
// prints the rows/series the corresponding paper table or figure reports,
// followed by the headline metrics its claim rests on.
//
// The harness degrades gracefully: every run is guarded against panics
// and an optional per-run timeout, failed runs are reported in the final
// summary table while the rest of the sweep completes, and the exit code
// is non-zero only when every run failed (or any run failed under
// -strict).
//
// Usage:
//
//	crispbench [-exp all|table2|fig3|fig6|fig7|fig9|fig10|fig11|fig12|fig13|fig14|fig15] [-scale default|quick]
//	crispbench -sweep cfg1.json,cfg2.json [-scene SPL] [-compute VIO] [-policy EVEN]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	crisp "crisp"
	"crisp/internal/experiments"
	"crisp/internal/robust"
	"crisp/internal/stats"
)

// runOutcome is one guarded run's row in the final summary.
type runOutcome struct {
	name string
	dur  time.Duration
	err  error
	// Headline results (sweep mode; experiments print their own tables).
	cycles      int64
	frameTimeMS float64
	statsDigest string
	// Snapshot accounting (sweep mode with -checkpoint-dir / -resume).
	ckptSaves int
	ckptSave  time.Duration
	snapLoad  time.Duration
	resumedAt int64
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table2, fig3, fig3sweep, fig6, fig7, fig9, fig10, fig11, fig12, fig13, fig14, fig15, upscale, qos)")
	scaleName := flag.String("scale", "default", "resolution scale: default (320x180 2K-class) or quick (128x72)")
	csvDir := flag.String("csv", "", "also write each experiment's table as <dir>/<exp>.csv (artifact-style output)")
	strict := flag.Bool("strict", false, "exit non-zero if any run fails (default: only if all fail)")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock timeout (0 = none)")
	sweep := flag.String("sweep", "", "comma-separated GPU config JSON files: run scene+compute under -policy on each instead of the experiment suite")
	sceneName := flag.String("scene", "", "sweep mode: rendering workload (empty = compute only)")
	computeName := flag.String("compute", "VIO", "sweep mode: compute workload (empty = graphics only)")
	policyName := flag.String("policy", "EVEN", "sweep mode: partitioning policy")
	dumpDir := flag.String("dumps", "", "write crash-dump JSON for failed runs into this directory")
	ckptDir := flag.String("checkpoint-dir", "", "sweep mode: checkpoint each run into <dir>/<config-name>/ (plus a final snapshot on failure)")
	ckptEvery := flag.Int64("checkpoint-every", 0, "sweep mode: checkpoint cadence in cycles (0 = default 100000)")
	resume := flag.Bool("resume", false, "sweep mode: resume each run from its checkpoint subdirectory when a snapshot exists")
	budget := flag.Int64("budget", 0, "sweep mode: per-run cycle budget; exceeding it fails the run, leaving a resumable snapshot (0 = unlimited)")
	jsonOut := flag.String("json", "", "write the run summary (per-run cycles, stats digest, failures, snapshot timings) as JSON to this file (\"-\" = stdout)")
	workers := flag.Int("j", 0, "host worker goroutines stepping SMs per run (0 = all CPUs, 1 = serial reference engine; results identical at any setting)")
	noSkip := flag.Bool("no-skip", false, "disable event-driven core sleeping (cycle-by-cycle oracle; results identical either way)")
	flag.Parse()
	experiments.Workers = *workers
	experiments.NoSkip = *noSkip

	for _, dir := range []string{*csvDir, *dumpDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	var outcomes []runOutcome
	if *sweep != "" {
		outcomes = runSweep(sweepConfig{
			paths: *sweep, scene: *sceneName, compute: *computeName, policy: *policyName,
			timeout: *runTimeout, dumpDir: *dumpDir,
			ckptDir: *ckptDir, ckptEvery: *ckptEvery, resume: *resume, budget: *budget,
			workers: *workers, noSkip: *noSkip,
		})
	} else {
		outcomes = runExperiments(*exp, *scaleName, *csvDir, *dumpDir, *runTimeout)
		if outcomes == nil {
			fmt.Fprintf(os.Stderr, "no experiment matches %q\n", *exp)
			os.Exit(2)
		}
	}

	failed := printSummary(outcomes)
	if *jsonOut != "" {
		if err := writeJSONSummary(*jsonOut, outcomes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	switch {
	case failed == len(outcomes):
		os.Exit(1)
	case failed > 0 && *strict:
		os.Exit(1)
	}
}

// guard runs fn with panic recovery and an optional wall-clock timeout.
// On timeout the runaway goroutine is abandoned (the process-level
// watchdog inside the simulator itself is the cycle-domain guard; this
// one bounds host time).
func guard(name string, timeout time.Duration, fn func() error) (err error) {
	done := make(chan error, 1)
	go func() {
		var ferr error
		defer func() {
			robust.RecoverAsError(&ferr, name)
			done <- ferr
		}()
		ferr = fn()
	}()
	if timeout <= 0 {
		return <-done
	}
	select {
	case err = <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("%s: exceeded run timeout %v (abandoned)", name, timeout)
	}
}

// runExperiments drives the selected suite experiments, each guarded.
// Returns nil when no experiment name matched.
func runExperiments(exp, scaleName, csvDir, dumpDir string, timeout time.Duration) []runOutcome {
	sc := experiments.DefaultScale
	if scaleName == "quick" {
		sc = experiments.QuickScale
	}
	selected := strings.Split(exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	var outcomes []runOutcome
	for _, e := range allExperiments {
		if !want(e.name) {
			continue
		}
		fmt.Printf("==== %s — %s ====\n", strings.ToUpper(e.name), e.title)
		t0 := time.Now()
		err := guard(e.name, timeout, func() error {
			table, err := e.run(sc)
			if err != nil {
				return err
			}
			if csvDir != "" && table != nil {
				path := fmt.Sprintf("%s/%s.csv", csvDir, e.name)
				if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", path)
			}
			return nil
		})
		dur := time.Since(t0).Round(time.Millisecond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED after %v: %v\n\n", e.name, dur, err)
			writeDump(dumpDir, e.name, err)
		} else {
			fmt.Printf("(%s in %v)\n\n", e.name, dur)
		}
		outcomes = append(outcomes, runOutcome{name: e.name, dur: dur, err: err})
	}
	return outcomes
}

// sweepConfig bundles sweep-mode settings.
type sweepConfig struct {
	paths, scene, compute, policy string
	timeout                       time.Duration
	dumpDir                       string
	ckptDir                       string
	ckptEvery                     int64
	resume                        bool
	budget                        int64
	workers                       int
	noSkip                        bool
}

// runSweep runs one scene+compute pairing across a list of GPU config
// files, guarding each run with true context cancellation. With
// -checkpoint-dir each run checkpoints into its own subdirectory; with
// -resume a run that left a snapshot there (e.g. killed by -budget on a
// previous invocation) picks up where it stopped instead of starting over.
func runSweep(sc sweepConfig) []runOutcome {
	var outcomes []runOutcome
	for _, path := range strings.Split(sc.paths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		out := runOutcome{name: name}
		t0 := time.Now()
		out.err = guard(name, sc.timeout, func() error {
			ctx := context.Background()
			if sc.timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, sc.timeout)
				defer cancel()
			}
			var runOpts []crisp.RunOption
			if sc.budget > 0 {
				runOpts = append(runOpts, crisp.WithCycleBudget(sc.budget))
			}
			if sc.workers != 0 {
				runOpts = append(runOpts, crisp.WithWorkers(sc.workers))
			}
			if sc.noSkip {
				runOpts = append(runOpts, crisp.WithNoSkip())
			}
			sub := ""
			if sc.ckptDir != "" {
				sub = filepath.Join(sc.ckptDir, name)
				runOpts = append(runOpts, crisp.WithCheckpointDir(sub))
				if sc.ckptEvery > 0 {
					runOpts = append(runOpts, crisp.WithCheckpointEvery(sc.ckptEvery))
				}
			}

			var res *crisp.Result
			var err error
			if sc.resume && sub != "" {
				tLoad := time.Now()
				env, lerr := crisp.LoadSnapshot(sub)
				if lerr == nil {
					out.snapLoad = time.Since(tLoad)
					res, err = crisp.Resume(ctx, env, runOpts...)
				} else {
					fmt.Fprintf(os.Stderr, "%s: no resumable snapshot (%v); starting fresh\n", name, lerr)
				}
			}
			if res == nil && err == nil {
				var cfg crisp.GPUConfig
				cfg, err = crisp.GPUFromFile(path)
				if err != nil {
					return err
				}
				res, err = crisp.RunPairContext(ctx, cfg, sc.scene, sc.compute,
					crisp.PolicyKind(sc.policy), crisp.DefaultRenderOptions(), runOpts...)
			}
			if err != nil {
				return err
			}
			out.cycles, out.frameTimeMS = res.Cycles, res.FrameTimeMS
			if d, derr := res.StatsDigest(); derr == nil {
				out.statsDigest = fmt.Sprintf("%016x", d)
			}
			out.ckptSaves, out.ckptSave = res.CheckpointSaves, res.CheckpointSaveTime
			if res.Resumed {
				out.resumedAt = res.ResumedFrom
				// Stderr, so a resumed sweep's stdout stays diffable against
				// an uninterrupted one (the CI interrupt-resume gate).
				fmt.Fprintf(os.Stderr, "%s: resumed from cycle %d\n", name, res.ResumedFrom)
			}
			fmt.Printf("%-24s %12d cycles  %8.3f ms\n", name, res.Cycles, res.FrameTimeMS)
			return nil
		})
		out.dur = time.Since(t0).Round(time.Millisecond)
		if out.err != nil {
			fmt.Fprintf(os.Stderr, "%-24s FAILED after %v: %v\n", name, out.dur, out.err)
			writeDump(sc.dumpDir, name, out.err)
		}
		outcomes = append(outcomes, out)
	}
	return outcomes
}

// writeDump serializes the crash dump attached to err (if any) as JSON.
func writeDump(dir, name string, err error) {
	if dir == "" {
		return
	}
	se, ok := robust.AsSimError(err)
	if !ok || se.Dump == nil {
		return
	}
	path := filepath.Join(dir, name+".dump.json")
	f, ferr := os.Create(path)
	if ferr != nil {
		fmt.Fprintln(os.Stderr, ferr)
		return
	}
	defer f.Close()
	if werr := se.Dump.WriteJSON(f); werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		return
	}
	fmt.Fprintf(os.Stderr, "crash dump written to %s\n", path)
}

// jsonRun is one outcome in the -json summary. Zero-valued fields are
// omitted, so experiment-mode runs (no cycle counts) stay compact.
type jsonRun struct {
	Name        string  `json:"name"`
	Status      string  `json:"status"` // "ok" or "failed"
	Error       string  `json:"error,omitempty"`
	ErrorKind   string  `json:"error_kind,omitempty"` // SimError taxonomy kind
	DurationMS  float64 `json:"duration_ms"`
	Cycles      int64   `json:"cycles,omitempty"`
	FrameTimeMS float64 `json:"frame_time_ms,omitempty"`
	StatsDigest string  `json:"stats_digest,omitempty"`

	CheckpointSaves  int     `json:"checkpoint_saves,omitempty"`
	CheckpointSaveMS float64 `json:"checkpoint_save_ms,omitempty"`
	SnapshotLoadMS   float64 `json:"snapshot_load_ms,omitempty"`
	ResumedAtCycle   int64   `json:"resumed_at_cycle,omitempty"`
}

// writeJSONSummary serializes the outcome list for machine consumption
// (CI gates diff stats digests across invocations; dashboards read the
// timings).
func writeJSONSummary(path string, outcomes []runOutcome) error {
	ok := 0
	runs := make([]jsonRun, 0, len(outcomes))
	for _, o := range outcomes {
		jr := jsonRun{
			Name:             o.name,
			Status:           "ok",
			DurationMS:       float64(o.dur.Microseconds()) / 1000,
			Cycles:           o.cycles,
			FrameTimeMS:      o.frameTimeMS,
			StatsDigest:      o.statsDigest,
			CheckpointSaves:  o.ckptSaves,
			CheckpointSaveMS: float64(o.ckptSave.Microseconds()) / 1000,
			SnapshotLoadMS:   float64(o.snapLoad.Microseconds()) / 1000,
			ResumedAtCycle:   o.resumedAt,
		}
		if o.err != nil {
			jr.Status = "failed"
			jr.Error = o.err.Error()
			if se, isSim := robust.AsSimError(o.err); isSim {
				jr.ErrorKind = se.Kind.String()
			}
		} else {
			ok++
		}
		runs = append(runs, jr)
	}
	b, err := json.MarshalIndent(map[string]any{
		"ok": ok, "failed": len(outcomes) - ok, "runs": runs,
	}, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// printSummary renders the outcome table and returns the failure count.
func printSummary(outcomes []runOutcome) int {
	failed := 0
	t := &stats.Table{Header: []string{"run", "status", "time", "snapshot", "detail"}}
	for _, o := range outcomes {
		status, detail := "ok", ""
		if o.err != nil {
			failed++
			status = "FAILED"
			detail = o.err.Error()
			var se *robust.SimError
			if errors.As(o.err, &se) {
				detail = fmt.Sprintf("%s @ cycle %d: %s", se.Kind, se.Cycle, se.Msg)
			}
			if len(detail) > 72 {
				detail = detail[:69] + "..."
			}
		}
		snap := ""
		if o.ckptSaves > 0 {
			snap = fmt.Sprintf("%d saves/%v", o.ckptSaves, o.ckptSave.Round(time.Microsecond))
		}
		if o.snapLoad > 0 {
			if snap != "" {
				snap += " "
			}
			snap += fmt.Sprintf("load %v@%d", o.snapLoad.Round(time.Microsecond), o.resumedAt)
		}
		t.AddRow(o.name, status, o.dur.String(), snap, detail)
	}
	fmt.Printf("==== SUMMARY (%d/%d ok) ====\n%s", len(outcomes)-failed, len(outcomes), t)
	return failed
}

type experiment struct {
	name  string
	title string
	// run prints the experiment's output and returns its primary table
	// (written as CSV under -csv).
	run func(sc experiments.Scale) (*stats.Table, error)
}

var allExperiments = []experiment{
	{"table2", "Simulation configurations", func(sc experiments.Scale) (*stats.Table, error) {
		t := experiments.Table2()
		fmt.Println(t)
		return t, nil
	}},
	{"fig3", "Vertex shader invocations: simulator vs hardware profiler (batch size 96)", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig3(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		fmt.Printf("correlation r = %.4f over %d drawcalls; mean warp-rounding over-count = %.1f%%\n",
			r.R, r.Points, 100*r.MeanRelErr)
		return r.Table, nil
	}},
	{"fig3sweep", "Vertex batch-size sweep: invocation-count error vs batch size", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig3Sweep(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		fmt.Printf("best batch size = %d (paper fixes 96 after the same sweep)\n", r.Best)
		return r.Table, nil
	}},
	{"fig6", "Frame-time correlation vs RTX 3070 silicon stand-in (2K/4K classes)", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig6(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		fmt.Printf("correlation r = %.4f; simulator reads high on %s of points (paper: all, for lack of driver optimizations)\n",
			r.R, stats.Pct(r.SimHighFraction))
		fmt.Printf("2K→4K scaling: IT (vertex-bound) %.2fx, max across scenes %.2fx\n", r.ITScaling, r.MaxScaling)
		return r.Table, nil
	}},
	{"fig7", "Mip merge on a 4x4 texture: four level-0 requests collapse at level 1", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig7()
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		fmt.Printf("distinct texels: level 0 = %d, level 1 = %d\n", r.Level0Distinct, r.Level1Distinct)
		return r.Table, nil
	}},
	{"fig9", "L1 texture accesses: LoD on vs off vs exact-LoD reference", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig9(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		fmt.Printf("MAPE: LoD on = %s, LoD off = %s (%.1fx reduction; paper: 219%% → 33%%, 6.6x)\n",
			stats.Pct(r.MAPEOn), stats.Pct(r.MAPEOff), r.Improvement)
		fmt.Printf("worst per-drawcall LoD-off inflation: %.1fx (paper: up to 6x)\n", r.MaxInflation)
		return r.Table, nil
	}},
	{"fig10", "TEX cache lines (128B) per CTA in one Sponza drawcall", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig10(sc)
		if err != nil {
			return nil, err
		}
		fmt.Printf("drawcall %s:\n%s", r.Drawcall, r.Histogram)
		fmt.Printf("mode = %d, mean = %.2f; per-drawcall means span %.2f–%.2f (paper: 2.54–21.19)\n",
			r.Mode, r.Mean, r.MeanMin, r.MeanMax)
		hist := &stats.Table{Header: []string{"tex-lines-per-CTA", "count"}}
		for v := 0; v <= 256; v++ {
			if n := r.Histogram.Count(v); n > 0 {
				hist.AddRow(fmt.Sprint(v), fmt.Sprint(n))
			}
		}
		return hist, nil
	}},
	{"fig11", "L2 composition by shading technique (PBR Pistol vs basic Sponza)", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig11(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		return r.Table, nil
	}},
	{"fig12", "Warped-slicer vs EVEN vs MPS on Jetson Orin (normalized to MPS)", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig12(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		fmt.Printf("geomean: MPS %.3f, EVEN %.3f, Dynamic %.3f; best NN pairing %.3f\n",
			r.GeoMean["MPS"], r.GeoMean["EVEN"], r.GeoMean["WarpedSlicer"], r.BestNNSpeedup)
		return r.Table, nil
	}},
	{"fig13", "Warped-slicer occupancy timeline, PT+VIO on Jetson Orin", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig13(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		fmt.Printf("peak resident warps %d; minimum while both tasks resident %d (register-limited dips)\n",
			r.PeakWarps, r.MinBusyWarps)
		return r.Table, nil
	}},
	{"fig14", "TAP vs MiG vs MPS on RTX 3070 (normalized to MPS)", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig14(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		fmt.Printf("geomean: MPS %.3f, MiG %.3f, TAP %.3f\n",
			r.GeoMean["MPS"], r.GeoMean["MiG"], r.GeoMean["TAP"])
		return r.Table, nil
	}},
	{"fig15", "L2 composition under TAP, SPH+HOLO", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.Fig15(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		fmt.Printf("rendering owns %s of valid L2 lines (TAP starves the compute-bound HOLO)\n",
			stats.Pct(r.RenderFraction))
		return r.Table, nil
	}},
	{"upscale", "Async-compute case study: low-res render + DLSS-analog tensor upscaling", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.CaseStudyAsyncUpscale(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		return r.Table, nil
	}},
	{"qos", "QoS case study: frame-ready time vs throughput, PT+VIO", func(sc experiments.Scale) (*stats.Table, error) {
		r, err := experiments.CaseStudyQoS(sc)
		if err != nil {
			return nil, err
		}
		fmt.Println(r.Table)
		return r.Table, nil
	}},
}
