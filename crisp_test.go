package crisp

import "testing"

func tinyOpts() RenderOptions {
	o := DefaultRenderOptions()
	o.W, o.H = 128, 72
	return o
}

func TestPublicQuickstart(t *testing.T) {
	res, err := RunPair(JetsonOrin(), "SPL", "", PolicySerial, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.FrameTimeMS <= 0 {
		t.Fatalf("cycles=%d time=%v", res.Cycles, res.FrameTimeMS)
	}
}

func TestPublicConcurrentPair(t *testing.T) {
	res, err := RunPair(RTX3070(), "PL", "HOLO", PolicyEven, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTask) != 2 {
		t.Fatalf("tasks = %d, want 2", len(res.PerTask))
	}
}

func TestPublicCatalogs(t *testing.T) {
	if len(SceneNames()) != 6 {
		t.Errorf("scenes = %v", SceneNames())
	}
	if len(ComputeNames()) != 5 {
		t.Errorf("compute = %v", ComputeNames())
	}
	if len(Policies()) != 7 {
		t.Errorf("policies = %v", Policies())
	}
}

func TestPublicGPUByName(t *testing.T) {
	for _, name := range []string{"JetsonOrin", "RTX3070"} {
		cfg, err := GPUByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Name != name {
			t.Errorf("GPUByName(%q).Name = %q", name, cfg.Name)
		}
	}
	if _, err := GPUByName("H100"); err == nil {
		t.Error("unknown GPU accepted")
	}
}

func TestPublicRenderAndCompute(t *testing.T) {
	frame, err := RenderScene("MT", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := BuildCompute("NN")
	if err != nil {
		t.Fatal(err)
	}
	job := Job{GPU: JetsonOrin(), Graphics: frame, Compute: comp, Policy: PolicyMPS}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.L2Lines == 0 {
		t.Error("no L2 composition recorded")
	}
}
