package crisp

import (
	"context"
	"strings"
	"testing"
)

func tinyOpts() RenderOptions {
	o := DefaultRenderOptions()
	o.W, o.H = 128, 72
	return o
}

func TestPublicQuickstart(t *testing.T) {
	res, err := RunPair(JetsonOrin(), "SPL", "", PolicySerial, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.FrameTimeMS <= 0 {
		t.Fatalf("cycles=%d time=%v", res.Cycles, res.FrameTimeMS)
	}
}

func TestPublicConcurrentPair(t *testing.T) {
	res, err := RunPair(RTX3070(), "PL", "HOLO", PolicyEven, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTask) != 2 {
		t.Fatalf("tasks = %d, want 2", len(res.PerTask))
	}
}

func TestPublicCatalogs(t *testing.T) {
	if len(SceneNames()) != 6 {
		t.Errorf("scenes = %v", SceneNames())
	}
	if len(ComputeNames()) != 5 {
		t.Errorf("compute = %v", ComputeNames())
	}
	if len(Policies()) != 7 {
		t.Errorf("policies = %v", Policies())
	}
}

func TestPublicGPUByName(t *testing.T) {
	for _, name := range []string{"JetsonOrin", "RTX3070"} {
		cfg, err := GPUByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Name != name {
			t.Errorf("GPUByName(%q).Name = %q", name, cfg.Name)
		}
	}
	if _, err := GPUByName("H100"); err == nil {
		t.Error("unknown GPU accepted")
	}
}

func TestPublicRenderAndCompute(t *testing.T) {
	frame, err := RenderScene("MT", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := BuildCompute("NN")
	if err != nil {
		t.Fatal(err)
	}
	job := Job{GPU: JetsonOrin(), Graphics: frame, Compute: comp, Policy: PolicyMPS}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.L2Lines == 0 {
		t.Error("no L2 composition recorded")
	}
}

// panickyTracer is a user-supplied observability callback that panics —
// the classic recoverable programmer error the public API firewall must
// convert into an error instead of crashing the host process.
type panickyTracer struct{ after int }

func (p *panickyTracer) Emit(TraceEvent) {
	if p.after--; p.after < 0 {
		panic("tracer exploded")
	}
}

func TestPublicAPIPanicRecovery(t *testing.T) {
	res, err := RunPair(JetsonOrin(), "", "VIO", PolicySerial, tinyOpts(),
		WithTracer(&panickyTracer{after: 3}))
	if err == nil {
		t.Fatalf("panicking tracer returned success: %+v", res)
	}
	se, ok := AsSimError(err)
	if !ok {
		t.Fatalf("err = %v, want a SimError", err)
	}
	if se.Kind != ErrPanic {
		t.Errorf("kind = %v, want panic", se.Kind)
	}
	if !strings.Contains(se.Msg, "tracer exploded") {
		t.Errorf("recovered message lost the panic value: %q", se.Msg)
	}
}

func TestPublicSimErrorTaxonomy(t *testing.T) {
	// Budget: structured, typed, dump attached.
	_, err := RunPair(JetsonOrin(), "", "VIO", PolicySerial, tinyOpts(), WithCycleBudget(16))
	se, ok := AsSimError(err)
	if !ok || se.Kind != ErrBudget {
		t.Fatalf("err = %v, want budget SimError", err)
	}
	if se.Dump == nil || se.Dump.Config != "JetsonOrin" {
		t.Errorf("dump = %+v, want config name recorded", se.Dump)
	}
	// Cancellation through the context API.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunPairContext(ctx, JetsonOrin(), "", "VIO", PolicySerial, tinyOpts()); err == nil {
		t.Fatal("canceled context returned success")
	} else if se, ok := AsSimError(err); !ok || se.Kind != ErrCanceled {
		t.Errorf("err = %v, want canceled SimError", err)
	}
	// A plain failure (unknown workload) is NOT a SimError.
	_, err = RunPair(JetsonOrin(), "", "NOPE", PolicySerial, tinyOpts())
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, ok := AsSimError(err); ok {
		t.Errorf("lookup failure misclassified as SimError: %v", err)
	}
}
