package crisp

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"crisp/internal/snapshot"
)

// makeSnapshotFile produces a genuine on-disk snapshot by interrupting a
// tiny run with a cycle budget (the budget failure flushes final.crispsnap
// through the normal checkpoint path) and returns the file's bytes.
func makeSnapshotFile(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	_, err := RunPair(JetsonOrin(), "SPL", "VIO", PolicyEven, tinyOpts(),
		WithCheckpointDir(dir), WithCycleBudget(512))
	if err == nil {
		t.Fatal("budgeted run succeeded; expected an interrupt leaving a snapshot")
	}
	b, rerr := os.ReadFile(filepath.Join(dir, "final.crispsnap"))
	if rerr != nil {
		t.Fatalf("reading final snapshot: %v", rerr)
	}
	return b
}

// wantResumeSnapshotError runs ResumeFile on a damaged snapshot and
// asserts the failure is a typed ErrSnapshot SimError — the documented
// contract is that hostile or damaged input never panics and never
// surfaces an untyped decoding error.
func wantResumeSnapshotError(t *testing.T, path, what string) {
	t.Helper()
	res, err := ResumeFile(context.Background(), path)
	if err == nil {
		t.Fatalf("%s: ResumeFile succeeded (cycles=%d), want ErrSnapshot", what, res.Cycles)
	}
	se, ok := AsSimError(err)
	if !ok || se.Kind != ErrSnapshot {
		t.Fatalf("%s: err = %v (%T), want ErrSnapshot SimError", what, err, err)
	}
}

// TestResumeFileRejectsDamagedSnapshots covers the resume error paths a
// deployment actually hits: files cut short by a full disk or a killed
// writer, and files whose body bits rotted (checksum mismatch).
func TestResumeFileRejectsDamagedSnapshots(t *testing.T) {
	good := makeSnapshotFile(t)
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		path := filepath.Join(dir, name+snapshot.Ext)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
		return path
	}

	// Sanity: the pristine bytes resume fine.
	if res, err := ResumeFile(context.Background(), write("pristine", good)); err != nil {
		t.Fatalf("pristine snapshot did not resume: %v", err)
	} else if !res.Resumed || res.Cycles <= 512 {
		t.Fatalf("pristine resume: resumed=%v cycles=%d", res.Resumed, res.Cycles)
	}

	for _, n := range []int{1, 16, len(good) / 2, len(good) - 1} {
		wantResumeSnapshotError(t, write("truncated", good[:n]), "truncated snapshot")
	}

	for _, off := range []int{len(good) / 2, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		wantResumeSnapshotError(t, write("corrupted", bad), "checksum-corrupted snapshot")
	}

	if _, err := ResumeFile(context.Background(), filepath.Join(dir, "missing"+snapshot.Ext)); err == nil {
		t.Fatal("ResumeFile on a missing path succeeded")
	}
}
