package crisp_test

import (
	"fmt"

	"crisp"
)

// ExampleSceneNames lists the built-in workload catalogs.
func ExampleSceneNames() {
	fmt.Println(crisp.SceneNames())
	fmt.Println(crisp.ComputeNames())
	// Output:
	// [IT MT PL PT SPH SPL]
	// [VIO HOLO NN UPSCALE ATW]
}

// ExampleRunPair simulates a rendering+compute pair in one call.
func ExampleRunPair() {
	res, err := crisp.RunPair(crisp.JetsonOrin(), "SPL", "VIO",
		crisp.PolicyEven, crisp.DefaultRenderOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Cycles > 0, len(res.PerTask))
	// Output: true 2
}

// ExampleJob shows the lower-level API: render once, reuse the traces
// under several policies.
func ExampleJob() {
	gfx, err := crisp.RenderScene("PL", crisp.DefaultRenderOptions())
	if err != nil {
		panic(err)
	}
	comp, err := crisp.BuildCompute("HOLO")
	if err != nil {
		panic(err)
	}
	for _, pol := range []crisp.PolicyKind{crisp.PolicyMPS, crisp.PolicyEven} {
		job := crisp.Job{GPU: crisp.RTX3070(), Graphics: gfx, Compute: comp, Policy: pol}
		res, err := job.Run()
		if err != nil {
			panic(err)
		}
		fmt.Println(pol, res.Cycles > 0)
	}
	// Output:
	// MPS true
	// EVEN true
}

// ExampleGPUByName resolves the two Table II configurations.
func ExampleGPUByName() {
	orin, _ := crisp.GPUByName("JetsonOrin")
	rtx, _ := crisp.GPUByName("RTX3070")
	fmt.Println(orin.NumSMs, rtx.NumSMs)
	// Output: 14 46
}
